"""Historical system metrics (feature group A): causal correctness."""

import numpy as np
import pytest

from repro.workloads import Trace, compute_history

from helpers import make_job


class TestComputeHistory:
    def test_first_job_unobserved(self, handmade_trace):
        hist = compute_history(handmade_trace)
        assert not hist.observed[0]
        assert hist.average_size[0] == 0.0

    def test_only_completed_jobs_counted(self):
        # Job 1 arrives while job 0 (same pipeline) is still running:
        # job 0 must not appear in job 1's history.
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, pipeline="p"),
            make_job(1, arrival=50.0, duration=10.0, pipeline="p"),
            make_job(2, arrival=200.0, duration=10.0, pipeline="p"),
        ]
        hist = compute_history(Trace(jobs))
        assert not hist.observed[0]
        assert not hist.observed[1]
        # By t=200 both earlier jobs have completed (ends 100 and 60).
        assert hist.observed[2]

    def test_history_is_pipeline_scoped(self):
        jobs = [
            make_job(0, arrival=0.0, duration=10.0, pipeline="a"),
            make_job(1, arrival=100.0, duration=10.0, pipeline="b"),
        ]
        hist = compute_history(Trace(jobs))
        # Job 1 is pipeline b's first job: pipeline a's completion is invisible.
        assert not hist.observed[1]

    def test_running_average_values(self):
        from repro.units import GIB

        jobs = [
            make_job(0, arrival=0.0, duration=10.0, size=2 * GIB, pipeline="p"),
            make_job(1, arrival=20.0, duration=10.0, size=4 * GIB, pipeline="p"),
            make_job(2, arrival=40.0, duration=10.0, size=100 * GIB, pipeline="p"),
        ]
        hist = compute_history(Trace(jobs))
        assert hist.average_size[1] == pytest.approx(2 * GIB)
        assert hist.average_size[2] == pytest.approx(3 * GIB)

    def test_matrix_shape_and_order(self, handmade_trace):
        hist = compute_history(handmade_trace)
        mat = hist.as_matrix()
        assert mat.shape == (4, 4)
        assert mat[:, 0] == pytest.approx(hist.average_tcio)
        assert mat[:, 3] == pytest.approx(hist.average_io_density)

    def test_observed_grows_with_executions(self, small_trace):
        hist = compute_history(small_trace)
        n = len(small_trace)
        first_half = hist.observed[: n // 2].mean()
        second_half = hist.observed[n // 2 :].mean()
        assert second_half >= first_half
