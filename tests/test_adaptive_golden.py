"""Golden-trace test: Algorithm 1 step-by-step on a hand-computed case.

Pins the exact decision sequence of the adaptive policy on a tiny trace
where every threshold update can be verified by hand — a regression
anchor for the algorithm's arithmetic (window trimming, spillover
computation, threshold moves, admission comparisons).
"""

import numpy as np
import pytest

from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.storage import simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


def build_setting():
    """Five jobs, 100 s apart, each 10 GiB for 1000 s; capacity 10 GiB.

    With categories [3, 3, 3, 1, 3] and N=4 (ACT range [1, 3]):

    - t=0:   first update (td expired), empty history -> h=0 < T_l
             -> ACT: 2 -> 1.  Job 0 (cat 3 >= 1) -> SSD, fits fully.
    - t=100: update, history=[job0 fully placed] -> h=0 -> ACT stays 1
             (already at floor).  Job 1 -> SSD, but job 0 still holds
             all 10 GiB -> fully spilled.
    - t=200: h > 0 (job 1 spilled) -> if h > T_u, ACT 1 -> 2.
             Job 2 (cat 3 >= 2) -> SSD -> spills.
    - t=300: more spillover -> ACT 2 -> 3.  Job 3 (cat 1 < 3) -> HDD.
    - t=400: spillover persists -> ACT stays 3 (clamped).
             Job 4 (cat 3 >= 3) -> SSD -> spills.
    """
    jobs = [
        make_job(i, arrival=i * 100.0, duration=1000.0, size=10 * GIB)
        for i in range(5)
    ]
    trace = Trace(jobs)
    categories = np.array([3, 3, 3, 1, 3])
    params = AdaptiveParams(
        spillover_low=0.01,
        spillover_high=0.05,
        lookback_window=10_000.0,
        decision_interval=0.0,
        initial_act=2,
    )
    policy = AdaptiveCategoryPolicy(categories, n_categories=4, params=params)
    return trace, policy


class TestGoldenTrace:
    @pytest.fixture()
    def outcome(self):
        trace, policy = build_setting()
        result = simulate(trace, policy, capacity=10 * GIB)
        return policy, result

    def test_threshold_sequence(self, outcome):
        policy, _ = outcome
        acts = [e.act for e in policy.trajectory]
        assert acts == [1, 1, 2, 3, 3]

    def test_spillover_sequence_monotone_onset(self, outcome):
        policy, _ = outcome
        spills = [e.spillover for e in policy.trajectory]
        assert spills[0] == 0.0
        assert spills[1] == 0.0  # job 0 fully placed, nothing spilled yet
        assert spills[2] > 0.0  # job 1's spill is now visible

    def test_placements(self, outcome):
        _, result = outcome
        # Job 0 fits fully; jobs 1, 2, 4 spill entirely; job 3 -> HDD.
        assert result.ssd_fraction[0] == pytest.approx(1.0)
        assert result.ssd_fraction[1] == 0.0
        assert result.ssd_fraction[2] == 0.0
        assert result.ssd_fraction[3] == 0.0
        assert result.ssd_fraction[4] == 0.0
        assert result.n_ssd_requested == 4  # all but the cat-1 job
        assert result.n_spilled == 3
