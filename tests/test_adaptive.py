"""Adaptive Category Selection (Algorithm 1) behaviour."""

import numpy as np
import pytest

from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy, hash_categories
from repro.cost import DEFAULT_RATES
from repro.storage import BatchOutcomes, PlacementOutcome, simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


def uniform_jobs(n, size=1 * GIB, spacing=100.0, duration=90.0, **kw):
    return Trace([
        make_job(i, arrival=i * spacing, duration=duration, size=size, **kw)
        for i in range(n)
    ])


def policy_for(trace, categories=None, n_cat=5, **params_kw):
    cats = categories if categories is not None else np.full(len(trace), n_cat - 1)
    params = AdaptiveParams(**params_kw) if params_kw else AdaptiveParams()
    return AdaptiveCategoryPolicy(np.asarray(cats), n_cat, params)


class TestValidation:
    def test_categories_out_of_range(self):
        with pytest.raises(ValueError):
            AdaptiveCategoryPolicy(np.array([5]), n_categories=5)

    def test_length_mismatch_detected(self):
        trace = uniform_jobs(3)
        policy = AdaptiveCategoryPolicy(np.array([1]), 5)
        with pytest.raises(ValueError):
            simulate(trace, policy, capacity=1e18)


class TestThresholdDynamics:
    def test_act_decreases_when_no_spillover(self):
        trace = uniform_jobs(50)
        policy = policy_for(
            trace, n_cat=8, initial_act=7, decision_interval=50.0, lookback_window=500.0
        )
        simulate(trace, policy, capacity=1e18)
        # Plenty of SSD: threshold must fall to its floor of 1.
        assert policy.act == 1
        assert len(policy.trajectory) > 1

    def test_act_increases_under_pressure(self):
        # Tiny SSD: everything spills, ACT must climb.
        trace = uniform_jobs(80, size=10 * GIB, spacing=50.0, duration=5000.0)
        policy = policy_for(
            trace, n_cat=8, decision_interval=50.0, lookback_window=5000.0,
            spillover_low=0.01, spillover_high=0.1,
        )
        simulate(trace, policy, capacity=1 * GIB)
        assert policy.act > 1

    def test_act_clamped_to_valid_range(self):
        trace = uniform_jobs(100, size=10 * GIB, duration=1e6, spacing=10.0)
        policy = policy_for(trace, n_cat=4, decision_interval=0.0, lookback_window=1e5)
        simulate(trace, policy, capacity=1.0)
        assert 1 <= policy.act <= 3

    def test_category_zero_never_admitted(self):
        trace = uniform_jobs(20)
        cats = np.zeros(20, dtype=int)
        policy = policy_for(trace, categories=cats, n_cat=5)
        res = simulate(trace, policy, capacity=1e18)
        assert res.n_ssd_requested == 0

    def test_high_category_admitted_low_rejected_under_pressure(self):
        # Alternating important/unimportant jobs under scarce SSD.
        trace = uniform_jobs(200, size=5 * GIB, spacing=30.0, duration=2000.0)
        cats = np.tile([1, 4], 100)
        policy = policy_for(
            trace, categories=cats, n_cat=5,
            decision_interval=30.0, lookback_window=2000.0,
            spillover_low=0.005, spillover_high=0.05,
        )
        res = simulate(trace, policy, capacity=10 * GIB)
        admitted_cats = cats[res.ssd_fraction > 0]
        if len(admitted_cats) > 10:
            # Important jobs must dominate admissions.
            assert (admitted_cats == 4).mean() > 0.5


class TestDecisionInterval:
    def test_updates_respect_interval(self):
        trace = uniform_jobs(100, spacing=10.0)
        policy = policy_for(trace, decision_interval=500.0, lookback_window=600.0)
        simulate(trace, policy, capacity=1e18)
        times = [e.time for e in policy.trajectory]
        assert all(b - a >= 500.0 for a, b in zip(times, times[1:]))

    def test_zero_interval_updates_every_arrival(self):
        trace = uniform_jobs(30, spacing=10.0)
        policy = policy_for(trace, decision_interval=0.0, lookback_window=100.0)
        simulate(trace, policy, capacity=1e18)
        assert len(policy.trajectory) == 30


class TestToleranceBand:
    def test_act_stable_inside_band(self):
        # Spillover stays at 0 but the low bound is 0.0, so 0 is never
        # strictly below it: ACT must not move.
        trace = uniform_jobs(50)
        policy = policy_for(
            trace, n_cat=8, initial_act=4,
            spillover_low=0.0, spillover_high=0.9, decision_interval=0.0,
        )
        simulate(trace, policy, capacity=1e18)
        assert policy.act == 4


class TestShardCounterConsistency:
    """Scalar ``observe`` and ``observe_batch`` must accumulate the same
    per-shard admission/spill counters, in any interleaving (the scalar
    path grows them via ``outcome.shard + 1``, the batch path via the
    chunk maximum with a bincount ``minlength``)."""

    def _stream(self, n=120, seed=3):
        trace = uniform_jobs(n)
        rng = np.random.default_rng(seed)
        shards = rng.integers(0, 4, n)
        requested = rng.random(n) < 0.7
        spilled = requested & (rng.random(n) < 0.3)
        return trace, shards, requested, spilled

    def _fresh(self, trace):
        policy = AdaptiveCategoryPolicy(np.full(len(trace), 3), 5)
        policy.on_simulation_start(trace, 1 * GIB, DEFAULT_RATES)
        return policy

    def _feed_scalar(self, policy, trace, shards, requested, spilled, idx):
        for i in idx:
            t = float(trace.arrivals[i])
            policy.observe(
                PlacementOutcome(
                    job_index=int(i),
                    time=t,
                    requested_ssd=bool(requested[i]),
                    ssd_space_fraction=0.5 if spilled[i] else float(requested[i]),
                    spill_time=t if spilled[i] else None,
                    shard=int(shards[i]),
                )
            )

    def _feed_batch(self, policy, trace, shards, requested, spilled, first, stop):
        times = trace.arrivals[first:stop]
        sp = spilled[first:stop]
        policy.observe_batch(
            BatchOutcomes(
                first=int(first),
                times=times,
                requested_ssd=requested[first:stop],
                ssd_space_fraction=np.where(
                    sp, 0.5, requested[first:stop].astype(float)
                ),
                spill_time=np.where(sp, times, np.nan),
                shards=shards[first:stop].astype(np.intp),
            )
        )

    def test_scalar_batch_and_interleaved_agree(self):
        trace, shards, requested, spilled = self._stream()
        n = len(trace)

        p_scalar = self._fresh(trace)
        self._feed_scalar(p_scalar, trace, shards, requested, spilled, range(n))

        p_batch = self._fresh(trace)
        for first in range(0, n, 7):
            self._feed_batch(
                p_batch, trace, shards, requested, spilled, first, min(first + 7, n)
            )

        p_mixed = self._fresh(trace)
        for k, first in enumerate(range(0, n, 7)):
            stop = min(first + 7, n)
            if k % 2 == 0:
                self._feed_batch(
                    p_mixed, trace, shards, requested, spilled, first, stop
                )
            else:
                self._feed_scalar(
                    p_mixed, trace, shards, requested, spilled, range(first, stop)
                )

        for other in (p_batch, p_mixed):
            assert np.array_equal(
                p_scalar.shard_ssd_requested, other.shard_ssd_requested
            )
            assert np.array_equal(p_scalar.shard_spills, other.shard_spills)
        assert int(p_scalar.shard_ssd_requested.sum()) == int(requested.sum())
        assert int(p_scalar.shard_spills.sum()) == int(spilled.sum())

    def test_topology_presizing_keeps_shapes_stable(self):
        """After on_shard_topology the counter shape never changes, even
        when later chunks only touch low shards."""
        trace, shards, requested, spilled = self._stream()
        policy = self._fresh(trace)
        policy.on_shard_topology(shards.astype(np.intp), np.full(6, GIB / 6))
        assert policy.shard_ssd_requested.size == 6
        self._feed_batch(policy, trace, shards, requested, spilled, 0, 40)
        self._feed_scalar(policy, trace, shards, requested, spilled, range(40, 80))
        assert policy.shard_ssd_requested.size == 6
        assert policy.shard_spills.size == 6


class TestHashCategories:
    def test_range_and_determinism(self, small_trace):
        cats = hash_categories(small_trace, 15)
        assert cats.min() >= 1
        assert cats.max() <= 14
        assert np.array_equal(cats, hash_categories(small_trace, 15))

    def test_same_pipeline_same_category(self, small_trace):
        cats = hash_categories(small_trace, 15)
        by_pipe = {}
        for c, p in zip(cats, small_trace.pipelines):
            by_pipe.setdefault(p, set()).add(int(c))
        assert all(len(v) == 1 for v in by_pipe.values())

    def test_seed_changes_assignment(self, small_trace):
        a = hash_categories(small_trace, 15, seed=0)
        b = hash_categories(small_trace, 15, seed=1)
        assert not np.array_equal(a, b)

    def test_rejects_small_n(self, small_trace):
        with pytest.raises(ValueError):
            hash_categories(small_trace, 1)
