"""Sparkline renderer."""

from repro.analysis import render_sparkline


class TestSparkline:
    def test_constant_series_flat(self):
        out = render_sparkline([3.0, 3.0, 3.0])
        assert "min=3" in out and "max=3" in out

    def test_extremes_use_ramp_ends(self):
        out = render_sparkline([0.0, 10.0])
        inner = out[out.index("[") + 1 : out.index("]")]
        assert inner[0] == " "  # minimum maps to the lowest ramp char
        assert inner[-1] == "@"  # maximum maps to the highest

    def test_resampling_caps_width(self):
        out = render_sparkline(range(1000), width=40)
        inner = out[out.index("[") + 1 : out.index("]")]
        assert len(inner) == 40

    def test_label_prefix(self):
        assert render_sparkline([1, 2], label="acc").startswith("acc ")

    def test_empty(self):
        assert "(empty)" in render_sparkline([], label="x")
