"""Event-driven placement simulator: capacity, spillover, eviction, costs."""

import numpy as np
import pytest

from repro.storage import Decision, FixedPolicy, PlacementPolicy, simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


class AlwaysSSD(PlacementPolicy):
    name = "always-ssd"

    def decide(self, job_index, ctx):
        return Decision(want_ssd=True)


class AlwaysHDD(PlacementPolicy):
    name = "always-hdd"

    def decide(self, job_index, ctx):
        return Decision(want_ssd=False)


class TTLPolicy(PlacementPolicy):
    name = "ttl"

    def __init__(self, ttl):
        self.ttl = ttl

    def decide(self, job_index, ctx):
        return Decision(want_ssd=True, ssd_ttl=self.ttl)


class TestBasics:
    def test_all_hdd_zero_savings(self, handmade_trace):
        res = simulate(handmade_trace, AlwaysHDD(), capacity=100 * GIB)
        assert res.tco_savings_pct == 0.0
        assert res.tcio_savings_pct == 0.0
        assert (res.ssd_fraction == 0).all()

    def test_infinite_ssd_full_savings(self, handmade_trace):
        res = simulate(handmade_trace, AlwaysSSD(), capacity=1e18)
        assert (res.ssd_fraction == 1.0).all()
        assert res.realized_hdd_tcio == 0.0
        assert res.tcio_savings_pct == pytest.approx(100.0)
        expected = handmade_trace.costs()
        assert res.realized_tco == pytest.approx(expected.c_ssd.sum())

    def test_negative_capacity_raises(self, handmade_trace):
        with pytest.raises(ValueError):
            simulate(handmade_trace, AlwaysSSD(), capacity=-1.0)

    def test_zero_capacity_all_spill(self, handmade_trace):
        res = simulate(handmade_trace, AlwaysSSD(), capacity=0.0)
        assert (res.ssd_fraction == 0.0).all()
        assert res.n_spilled == len(handmade_trace)


class TestCapacityAccounting:
    def test_partial_fit_spills_remainder(self):
        trace = Trace([make_job(0, size=10 * GIB)])
        res = simulate(trace, AlwaysSSD(), capacity=4 * GIB)
        assert res.ssd_fraction[0] == pytest.approx(0.4)
        assert res.n_spilled == 1

    def test_capacity_freed_at_job_end(self):
        # Two 10 GiB jobs, disjoint in time, 10 GiB capacity: both fit.
        jobs = [
            make_job(0, arrival=0.0, duration=50.0, size=10 * GIB),
            make_job(1, arrival=100.0, duration=50.0, size=10 * GIB),
        ]
        res = simulate(Trace(jobs), AlwaysSSD(), capacity=10 * GIB)
        assert (res.ssd_fraction == 1.0).all()

    def test_concurrent_jobs_compete(self):
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, size=10 * GIB),
            make_job(1, arrival=10.0, duration=100.0, size=10 * GIB),
        ]
        res = simulate(Trace(jobs), AlwaysSSD(), capacity=10 * GIB)
        assert res.ssd_fraction[0] == 1.0
        assert res.ssd_fraction[1] == 0.0

    def test_peak_usage_tracked(self, handmade_trace):
        res = simulate(handmade_trace, AlwaysSSD(), capacity=1e18)
        assert res.peak_ssd_used == pytest.approx(handmade_trace.peak_ssd_usage())


class TestEviction:
    def test_ttl_frees_capacity_early(self):
        # Job 0 occupies SSD but is evicted at t=10; job 1 arrives at
        # t=20 and must find the space free.
        jobs = [
            make_job(0, arrival=0.0, duration=1000.0, size=10 * GIB),
            make_job(1, arrival=20.0, duration=100.0, size=10 * GIB),
        ]
        res = simulate(Trace(jobs), TTLPolicy(10.0), capacity=10 * GIB)
        assert res.ssd_fraction[1] > 0.0

    def test_ttl_reduces_ssd_time_fraction(self):
        trace = Trace([make_job(0, arrival=0.0, duration=100.0, size=1 * GIB)])
        res = simulate(trace, TTLPolicy(25.0), capacity=10 * GIB)
        assert res.ssd_fraction[0] == pytest.approx(0.25)

    def test_ttl_longer_than_duration_is_full_residency(self):
        trace = Trace([make_job(0, duration=100.0)])
        res = simulate(trace, TTLPolicy(1e9), capacity=1e18)
        assert res.ssd_fraction[0] == 1.0


class TestRealizedCosts:
    def test_cost_interpolation(self):
        trace = Trace([make_job(0, size=10 * GIB)])
        costs = trace.costs()
        res = simulate(trace, AlwaysSSD(), capacity=5 * GIB)
        f = res.ssd_fraction[0]
        expected = f * costs.c_ssd[0] + (1 - f) * costs.c_hdd[0]
        assert res.realized_tco == pytest.approx(expected)

    def test_savings_sign_consistency(self, small_trace):
        res = simulate(small_trace, AlwaysSSD(), capacity=1e18)
        agg = small_trace.costs()
        expected_pct = 100 * agg.savings.sum() / agg.c_hdd.sum()
        assert res.tco_savings_pct == pytest.approx(expected_pct)


class TestFixedPolicy:
    def test_replays_decisions(self, handmade_trace):
        decisions = np.array([True, False, True, False])
        res = simulate(handmade_trace, FixedPolicy(decisions), capacity=1e18)
        assert (res.ssd_fraction > 0) == pytest.approx(decisions)
        assert res.n_ssd_requested == 2
