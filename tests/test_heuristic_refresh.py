"""Deeper Heuristic behaviours: refresh cadence and admission edges."""

import numpy as np
import pytest

from repro.baselines import CategoryAdmissionPolicy
from repro.baselines.heuristic import _admission_set
from repro.storage import simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


class TestAdmissionSet:
    def test_negative_savings_never_admitted(self):
        admitted = _admission_set(
            ["a", "b"], np.array([-1.0, -5.0]), np.array([1.0, 1.0]), capacity=100.0
        )
        assert admitted == set()

    def test_ranking_by_savings(self):
        admitted = _admission_set(
            ["lo", "hi"], np.array([1.0, 10.0]), np.array([60.0, 60.0]), capacity=50.0
        )
        # Capacity reached after the first (highest-savings) category.
        assert admitted == {"hi"}

    def test_capacity_zero_admits_one(self):
        # The loop admits the top category then stops at the capacity
        # check — matching "add categories until usage reaches capacity".
        admitted = _admission_set(
            ["a", "b"], np.array([5.0, 1.0]), np.array([10.0, 10.0]), capacity=0.0
        )
        assert admitted == {"a"}

    def test_all_admitted_under_huge_capacity(self):
        admitted = _admission_set(
            ["a", "b", "c"],
            np.array([3.0, 2.0, 1.0]),
            np.array([1.0, 1.0, 1.0]),
            capacity=1e12,
        )
        assert admitted == {"a", "b", "c"}


class TestRefreshCadence:
    def _profitable(self, i, t, pipeline):
        return make_job(
            i, arrival=t, duration=50.0, size=1 * GIB, read_ops=500_000.0,
            pipeline=pipeline,
        )

    def test_refresh_uses_only_completed_jobs(self):
        # Jobs that have not completed by refresh time cannot seed the
        # admission set.
        jobs = [
            make_job(0, arrival=0.0, duration=10_000.0, size=1 * GIB,
                     read_ops=500_000.0, pipeline="slow"),
            make_job(1, arrival=2000.0, duration=10.0, size=1 * GIB,
                     read_ops=500_000.0, pipeline="slow"),
        ]
        policy = CategoryAdmissionPolicy(train_trace=None, refresh_interval=1000.0)
        res = simulate(Trace(jobs), policy, capacity=1e18)
        # Job 0 still running at t=2000 -> no history -> job 1 on HDD.
        assert res.n_ssd_requested == 0

    def test_faster_refresh_adapts_sooner(self):
        jobs = [self._profitable(i, i * 100.0, "p") for i in range(100)]
        trace = Trace(jobs)
        slow = CategoryAdmissionPolicy(train_trace=None, refresh_interval=5000.0)
        fast = CategoryAdmissionPolicy(train_trace=None, refresh_interval=500.0)
        res_slow = simulate(trace, slow, capacity=1e18)
        res_fast = simulate(trace, fast, capacity=1e18)
        assert res_fast.n_ssd_requested >= res_slow.n_ssd_requested

    def test_seed_plus_refresh_combines(self):
        # Seeded from training, then a new profitable pipeline appears
        # online and gets picked up by refresh.
        train = Trace([self._profitable(i, i * 100.0, "old") for i in range(50)])
        test_jobs = [self._profitable(i, i * 100.0, "old") for i in range(30)]
        test_jobs += [
            self._profitable(100 + i, 3000.0 + i * 100.0, "new") for i in range(60)
        ]
        trace = Trace(test_jobs)
        policy = CategoryAdmissionPolicy(train, refresh_interval=2000.0)
        res = simulate(trace, policy, capacity=1e18)
        new_mask = np.array([j.pipeline == "new" for j in trace])
        # Old pipeline admitted from the seed; new one eventually too.
        assert res.ssd_fraction[~new_mask].mean() > 0.9
        assert res.ssd_fraction[new_mask][-10:].mean() > 0.9
