"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CategoryLabeler, ObservedJob, spillover_percentage
from repro.cost import effective_disk_ops, tcio_rate, tco_savings
from repro.ml import QuantileBinner, roc_auc
from repro.oracle import greedy_placement
from repro.storage import Decision, PlacementPolicy, simulate
from repro.workloads import Trace

from helpers import make_job

finite_floats = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestCostProperties:
    @given(
        read_ops=finite_floats,
        write_bytes=finite_floats,
    )
    def test_effective_ops_nonnegative_and_monotone(self, read_ops, write_bytes):
        base = effective_disk_ops(read_ops, write_bytes)
        more = effective_disk_ops(read_ops + 1000, write_bytes)
        assert base >= 0
        assert more >= base

    @given(
        read_ops=finite_floats,
        write_bytes=finite_floats,
        duration=st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
    )
    def test_tcio_rate_finite_nonnegative(self, read_ops, write_bytes, duration):
        rate = tcio_rate(read_ops, write_bytes, duration)
        assert np.isfinite(rate)
        assert rate >= 0

    @given(
        size=st.floats(min_value=1.0, max_value=1e13, allow_nan=False),
        duration=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        tcio=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_savings_monotone_in_tcio(self, size, duration, tcio):
        """More I/O pressure can only increase the benefit of SSD."""
        lo = tco_savings(size, duration, size, size / 2, tcio)
        hi = tco_savings(size, duration, size, size / 2, tcio + 1.0)
        assert hi > lo


class TestLabelerProperties:
    @given(
        savings=arrays(
            float,
            st.integers(min_value=10, max_value=200),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        n_categories=st.integers(min_value=2, max_value=20),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_labels_always_in_range(self, savings, n_categories, data):
        density = data.draw(
            arrays(
                float,
                len(savings),
                elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
            )
        )
        labels = CategoryLabeler(n_categories).fit_transform(savings, density)
        assert labels.min() >= 0
        assert labels.max() < n_categories
        assert (labels[savings < 0] == 0).all()


class TestBinnerProperties:
    @given(
        data=arrays(
            float,
            st.tuples(
                st.integers(min_value=2, max_value=300),
                st.integers(min_value=1, max_value=5),
            ),
            elements=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        ),
        n_bins=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_codes_bounded_and_order_preserving(self, data, n_bins):
        binner = QuantileBinner(n_bins).fit(data)
        codes = binner.transform(data)
        assert codes.min() >= 0
        assert codes.max() < n_bins
        for c in range(data.shape[1]):
            order = np.argsort(data[:, c], kind="stable")
            col = codes[order, c].astype(int)
            assert (np.diff(col) >= 0).all()


class TestAucProperties:
    @given(
        scores=arrays(
            float,
            st.integers(min_value=4, max_value=200),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_auc_symmetry(self, scores, data):
        """AUC(y, s) + AUC(1-y, s) == 1 when both classes exist."""
        y = data.draw(
            arrays(np.int64, len(scores), elements=st.integers(0, 1))
        )
        if y.sum() == 0 or y.sum() == len(y):
            return
        a = roc_auc(y.astype(bool), scores)
        b = roc_auc(~y.astype(bool), scores)
        assert a + b == 1.0 or abs(a + b - 1.0) < 1e-9


class _RandomPolicy(PlacementPolicy):
    name = "random"

    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)

    def decide(self, job_index, ctx):
        return Decision(want_ssd=bool(self._rng.random() < 0.5))


class TestSimulatorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_jobs=st.integers(min_value=1, max_value=40),
        capacity_gib=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_fractions_bounded_and_costs_sane(self, seed, n_jobs, capacity_gib):
        rng = np.random.default_rng(seed)
        from repro.units import GIB

        jobs = [
            make_job(
                i,
                arrival=float(rng.uniform(0, 5000)),
                duration=float(rng.uniform(1, 2000)),
                size=float(rng.uniform(0.01, 10) * GIB),
                read_ops=float(rng.uniform(1, 1e6)),
            )
            for i in range(n_jobs)
        ]
        trace = Trace(jobs)
        res = simulate(trace, _RandomPolicy(seed), capacity=capacity_gib * GIB)
        assert (res.ssd_fraction >= 0).all()
        assert (res.ssd_fraction <= 1.0 + 1e-12).all()
        assert res.peak_ssd_used <= capacity_gib * GIB + 1e-6
        costs = trace.costs()
        lo = np.minimum(costs.c_hdd, costs.c_ssd).sum()
        hi = np.maximum(costs.c_hdd, costs.c_ssd).sum()
        assert lo - 1e-9 <= res.realized_tco <= hi + 1e-9


class TestGreedyProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_greedy_respects_capacity(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        arrivals = rng.uniform(0, 1000, n)
        ends = arrivals + rng.uniform(1, 300, n)
        sizes = rng.uniform(0.1, 5.0, n)
        values = rng.uniform(0.01, 10.0, n)
        cap = float(rng.uniform(0.5, 10.0))
        picked, total = greedy_placement(arrivals, ends, sizes, values, cap)
        chosen = set(picked.tolist())
        assert abs(total - sum(values[i] for i in chosen)) <= 1e-6 * max(total, 1.0)
        for t in arrivals:
            usage = sum(sizes[i] for i in chosen if arrivals[i] <= t < ends[i])
            assert usage <= cap + 1e-9


class TestSpilloverProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_percentage_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        history = []
        for _ in range(n):
            a = float(rng.uniform(0, 100))
            e = a + float(rng.uniform(1, 100))
            ssd = bool(rng.random() < 0.7)
            spilled = bool(rng.random() < 0.5) and ssd
            history.append(
                ObservedJob(
                    arrival=a,
                    end=e,
                    tcio_rate=float(rng.uniform(0, 5)),
                    scheduled_ssd=ssd,
                    spill_time=a if spilled else None,
                    spilled_fraction=float(rng.uniform(0, 1)) if spilled else 0.0,
                )
            )
        t = float(rng.uniform(50, 300))
        p = spillover_percentage(history, t)
        assert 0.0 <= p <= 1.0
