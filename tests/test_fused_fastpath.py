"""Fused admission fast paths: bit-identity across every engine tier.

PR contract for the fused kernel work:

1. **Engine sweep** — ``legacy`` / ``chunked`` / ``compiled`` produce
   bit-identical placements for every batched policy family, at every
   shard count, both offline (``simulate``/``simulate_sharded``) and
   online (``PlacementService`` replay).  ``compiled`` runs only where
   numba is installed; everywhere else the switch must refuse loudly.
2. **Category decision tables** — the adaptive policy's steady-state
   admission lookup is rebuilt on every ACT move and every
   ``on_shard_topology`` re-fire, never stale, and decision outcomes
   match the non-table arithmetic exactly at the update boundaries.
3. **Scalar-fallback accounting** — ``scalar_fallback_jobs`` is pinned
   across engines and unchanged by capacity shocks mid-stream.
4. **Fused serving layers** — ``tcio_rate_scalar``, the binner's
   ``transform_one``, the extractor's ``push_block``, and the packed
   forest's scratch/out= scoring paths each equal their batch
   references bit for bit.
"""

import numpy as np
import pytest

from repro.core import AdaptiveCategoryPolicy
from repro.cost import DEFAULT_RATES, tcio_rate, tcio_rate_scalar
from repro.ml.encoding import QuantileBinner
from repro.serve import PlacementService
from repro.storage import run_placement, simulate
from repro.storage.compiled import HAVE_NUMBA
from repro.units import GIB
from repro.workloads.features import OnlineFeatureExtractor, extract_features

from test_serve_service import (
    assert_bit_identical,
    make_policy_builders,
    random_trace,
)

ENGINES = ("legacy", "chunked") + (("compiled",) if HAVE_NUMBA else ())

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")


def assert_equivalent(a, b, label=""):
    """Legacy vs vectorized: equal to float roundoff (the runtime-suite
    contract — binding chunks re-vectorize sums, so exactness holds only
    within an engine family)."""
    np.testing.assert_allclose(
        b.ssd_fraction, a.ssd_fraction, atol=1e-9, rtol=1e-9, err_msg=label
    )
    assert b.n_ssd_requested == a.n_ssd_requested, label
    assert b.n_spilled == a.n_spilled, label
    assert b.realized_tco == pytest.approx(a.realized_tco, rel=1e-9), label


class TestEngineSweep:
    """legacy ~= chunked == compiled, offline and online."""

    @pytest.mark.parametrize("n_shards", (1, 4))
    @pytest.mark.parametrize("capacity", (2 * GIB, 40 * GIB))
    def test_offline_engines_agree(self, n_shards, capacity):
        trace = random_trace(21, n=400)
        for name, build in make_policy_builders(trace, 21).items():
            legacy = run_placement(
                trace, build(), capacity, n_shards=n_shards, engine="legacy"
            )
            chunked = run_placement(
                trace, build(), capacity, n_shards=n_shards, engine="chunked"
            )
            assert_equivalent(
                legacy, chunked, f"{name} x chunked x {n_shards} shards"
            )
            for engine in ENGINES[2:]:
                res = run_placement(
                    trace, build(), capacity, n_shards=n_shards, engine=engine
                )
                # Same vectorized family: exact, not tolerance.
                assert_bit_identical(
                    chunked, res, f"{name} x {engine} x {n_shards} shards"
                )

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_online_replay_matches_offline_per_engine(self, n_shards):
        trace = random_trace(22, n=400)
        cap = 20 * GIB
        for name, build in make_policy_builders(trace, 22).items():
            for engine in ("chunked",) + ENGINES[2:]:
                off = run_placement(
                    trace, build(), cap, n_shards=n_shards, engine=engine
                )
                svc = PlacementService(
                    build(), cap, n_shards, mode="batch", engine=engine
                )
                on = svc.replay(trace, batch_jobs=37)
                assert_bit_identical(
                    off, on, f"{name} x {engine} x {n_shards} shards online"
                )

    def test_compiled_engine_gated_without_numba(self):
        trace = random_trace(23, n=40)
        if HAVE_NUMBA:
            pytest.skip("numba present: the gate is the sweep above")
        with pytest.raises(RuntimeError, match="numba"):
            simulate(trace, make_policy_builders(trace, 23)["firstfit"](),
                     10 * GIB, engine="compiled")
        with pytest.raises(RuntimeError, match="numba"):
            PlacementService(
                make_policy_builders(trace, 23)["firstfit"](),
                10 * GIB, mode="batch", engine="compiled",
            )

    def test_compiled_dispatch_with_fallback_kernels(self, monkeypatch):
        """Drive the compiled=True branches with the NumPy fallback
        kernels (numba-free), so the dispatch plumbing is exercised on
        every environment: same gathers, same sequential accumulation,
        bit-identical to the chunked branch."""
        import repro.serve.service as service_mod
        import repro.storage.engine as engine_mod

        monkeypatch.setattr(engine_mod, "require_numba", lambda: None)
        trace = random_trace(25, n=300)
        cap = 3 * GIB  # binding regime: both trajectory kernels fire
        for name, build in make_policy_builders(trace, 25).items():
            chunked = run_placement(trace, build(), cap, engine="chunked")
            compiled = run_placement(trace, build(), cap, engine="compiled")
            assert_bit_identical(chunked, compiled, f"{name} fallback-compiled")
        svc = PlacementService(
            make_policy_builders(trace, 25)["adaptive"](),
            cap, mode="batch", engine="compiled",
        )
        on = svc.replay(trace, batch_jobs=41)
        off = run_placement(
            trace, make_policy_builders(trace, 25)["adaptive"](),
            cap, engine="chunked",
        )
        assert_bit_identical(off, on, "fallback-compiled online")

    @needs_numba
    def test_wal_recovery_bit_identity_compiled(self, tmp_path):
        """Crash + recover with engine="compiled" equals the
        uninterrupted compiled run (WAL replay re-enters the same
        compiled kernels)."""
        trace = random_trace(24, n=200)
        cap = 8 * GIB
        build = make_policy_builders(trace, 24)["adaptive"]
        svc = PlacementService(build(), cap, 4, mode="batch", engine="compiled")
        svc.open(trace)
        for j in trace:
            svc.submit(j)
        off = svc.result()

        wal, ckpt = str(tmp_path / "c.wal"), str(tmp_path / "c.ckpt")
        svc2 = PlacementService(
            build(), cap, 4, mode="batch", engine="compiled", wal=wal
        )
        svc2.open(trace)
        jobs = list(trace)
        for j in jobs[:60]:
            svc2.submit(j)
        svc2.checkpoint(ckpt)
        for j in jobs[60:120]:
            svc2.submit(j)
        svc2.wal.close()  # crash
        rec = PlacementService.recover(ckpt, wal)
        for j in jobs[120:]:
            rec.submit(j)
        assert_bit_identical(off, rec.result(), "compiled WAL recovery")


class TestDecisionTables:
    """The per-category admission table is exact and never stale."""

    def _trace_and_cats(self, seed, n=400):
        trace = random_trace(seed, n=n)
        cats = np.random.default_rng(seed).integers(0, 8, n)
        return trace, cats

    def test_table_matches_threshold_comparison(self):
        trace, cats = self._trace_and_cats(31)
        policy = AdaptiveCategoryPolicy(cats, 8)
        simulate(trace, policy, 4 * GIB, engine="chunked")
        table = policy._admit_table_current()
        cat_range = np.arange(8)
        if table.ndim == 2:
            expect = cat_range[None, :] >= policy.act_lanes[:, None]
        else:
            expect = cat_range >= policy.act
        np.testing.assert_array_equal(table, expect)

    def test_act_movement_rebuilds_table(self):
        """A run in a binding-capacity regime moves the ACT; the table
        must track every move (equality with legacy pins the decision
        boundary at each ThresholdEvent)."""
        trace, cats = self._trace_and_cats(32)
        p_legacy = AdaptiveCategoryPolicy(cats, 8)
        p_chunked = AdaptiveCategoryPolicy(cats, 8)
        ref = simulate(trace, p_legacy, 3 * GIB, engine="legacy")
        res = simulate(trace, p_chunked, 3 * GIB, engine="chunked")
        assert len(p_chunked.trajectory) > 1  # the regime under test
        assert_equivalent(ref, res, "table vs per-job thresholds")
        assert p_chunked._table_act == p_chunked.act

    def test_topology_refire_invalidates_table(self):
        trace, cats = self._trace_and_cats(33)
        policy = AdaptiveCategoryPolicy(cats, 8, per_shard_act=True)
        svc = PlacementService(policy, 12 * GIB, 4, mode="batch")
        svc.open(trace)
        jobs = list(trace)
        for j in jobs[:200]:
            svc.submit(j)
        svc.drain()
        svc.apply_shock(2 * GIB, lane=1)
        table = policy._admit_table_current()
        assert table.shape == (4, 8)
        np.testing.assert_array_equal(
            table, np.arange(8)[None, :] >= policy.act_lanes[:, None]
        )
        for j in jobs[200:]:
            svc.submit(j)
        assert policy._table_lanes is policy.act_lanes

    def test_manual_act_move_is_never_stale(self):
        """Mutating the threshold outside the event flow (the staleness
        backstop, not the normal path) still yields fresh decisions."""
        trace, cats = self._trace_and_cats(34, n=50)
        policy = AdaptiveCategoryPolicy(cats, 8)
        policy.on_simulation_start(trace, 10 * GIB, DEFAULT_RATES)
        before = policy._admit_table_current().copy()
        policy.act = min(policy.act + 1, 7)
        after = policy._admit_table_current()
        assert after[policy.act - 1] != before[policy.act - 1] or policy.act == 7
        np.testing.assert_array_equal(after, np.arange(8) >= policy.act)


class TestScalarFallbackAccounting:
    """scalar_fallback_jobs: engine-invariant, shock-invariant."""

    def _binding_setup(self, seed):
        trace = random_trace(seed, n=500)
        cats = np.random.default_rng(seed).integers(0, 6, len(trace))
        return trace, cats, 2 * GIB

    def test_pinned_across_engines(self):
        trace, cats, cap = self._binding_setup(41)
        ref = simulate(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, engine="chunked"
        )
        assert ref.n_spilled > 0
        for engine in ENGINES[2:]:
            res = simulate(
                trace, AdaptiveCategoryPolicy(cats, 6), cap, engine=engine
            )
            assert res.scalar_fallback_jobs == ref.scalar_fallback_jobs, engine

    def test_online_offline_fallback_counts_agree(self):
        trace, cats, cap = self._binding_setup(42)
        off = simulate(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, engine="chunked"
        )
        svc = PlacementService(AdaptiveCategoryPolicy(cats, 6), cap, mode="batch")
        on = svc.replay(trace, batch_jobs=31)
        assert on.scalar_fallback_jobs == off.scalar_fallback_jobs
        assert_bit_identical(off, on)

    def test_shock_does_not_inflate_fallback_accounting(self):
        """Regression: a capacity shock mid-stream flushes the queue but
        must not double-count candidates already attributed to the
        vectorized path, on any engine."""
        trace, cats, cap = self._binding_setup(43)
        jobs = list(trace)
        counts = {}
        for engine in ("chunked",) + ENGINES[2:]:
            svc = PlacementService(
                AdaptiveCategoryPolicy(cats, 6), cap, 2,
                mode="batch", engine=engine,
            )
            svc.open(trace)
            for j in jobs[:250]:
                svc.submit(j)
            svc.apply_shock(scale=0.5)
            for j in jobs[250:]:
                svc.submit(j)
            res = svc.result()
            counts[engine] = res.scalar_fallback_jobs
            assert 0 <= res.scalar_fallback_jobs <= res.n_ssd_requested
        assert len(set(counts.values())) == 1, counts


class TestFusedServingLayers:
    """Each fused layer equals its batch reference bit for bit."""

    def test_tcio_rate_scalar_matches_vectorized(self):
        rng = np.random.default_rng(51)
        n = 2000
        read_ops = rng.uniform(0, 1e6, n)
        write_bytes = rng.uniform(0, 1e12, n)
        durations = rng.uniform(0, 5000, n)
        vec = tcio_rate(read_ops, write_bytes, durations, DEFAULT_RATES)
        for i in range(0, n, 97):
            assert tcio_rate_scalar(
                float(read_ops[i]), float(write_bytes[i]),
                float(durations[i]), DEFAULT_RATES,
            ) == vec[i]

    def test_transform_one_matches_transform(self):
        rng = np.random.default_rng(52)
        X = rng.normal(size=(500, 12))
        X[:, 3] = (X[:, 3] > 0)  # a binary column
        X[:, 7] = 0.0            # a constant (empty-edges) column
        binner = QuantileBinner(n_bins=32).fit(X)
        ref = binner.transform(X)
        out = np.empty(12, dtype=np.uint8)
        for i in range(0, 500, 13):
            np.testing.assert_array_equal(
                binner.transform_one(X[i], out=out), ref[i]
            )

    def test_transform_out_buffer_matches(self):
        rng = np.random.default_rng(53)
        X = rng.normal(size=(200, 6))
        binner = QuantileBinner(n_bins=16).fit(X)
        out = np.empty((200, 6), dtype=np.uint8)
        np.testing.assert_array_equal(
            binner.transform(X, out=out), binner.transform(X)
        )

    def test_push_block_matches_push(self):
        trace = random_trace(54, n=300)
        ex_obj = OnlineFeatureExtractor()
        ex_col = OnlineFeatureExtractor()
        jobs = list(trace)
        ref = np.vstack([ex_obj.push([j]) for j in jobs])
        # Column path at mixed granularities, including per-request.
        splits = (0, 1, 2, 45, 46, 170, 300)
        rows = []
        for lo, hi in zip(splits[:-1], splits[1:]):
            rows.append(
                ex_col.push_block(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    [j.pipeline for j in jobs[lo:hi]],
                ).copy()
            )
        col = np.vstack(rows)
        # Object-path jobs carry metadata/resources; columns do not —
        # compare the column-visible feature groups (A and T).
        offline = extract_features(trace)
        a_cols = offline.group_columns("A")
        t_cols = offline.group_columns("T")
        np.testing.assert_array_equal(col[:, a_cols], ref[:, a_cols])
        np.testing.assert_array_equal(col[:, t_cols], ref[:, t_cols])
        b_c = np.setdiff1d(np.arange(col.shape[1]), np.r_[a_cols, t_cols])
        assert not col[:, b_c].any()

    def test_push_block_scratch_is_reused(self):
        trace = random_trace(55, n=64)
        ex = OnlineFeatureExtractor()
        r1 = ex.push_block(
            trace.arrivals[:32], trace.durations[:32], trace.sizes[:32],
            trace.read_bytes[:32], trace.write_bytes[:32],
            trace.read_ops[:32], list(trace.pipelines[:32]),
        )
        r2 = ex.push_block(
            trace.arrivals[32:], trace.durations[32:], trace.sizes[32:],
            trace.read_bytes[32:], trace.write_bytes[32:],
            trace.read_ops[32:], list(trace.pipelines[32:]),
        )
        assert r1.base is r2.base  # same scratch matrix, by design

    def test_decision_scores_out_and_one_match_batch(self):
        from repro.ml.gbdt import GBTClassifier

        rng = np.random.default_rng(56)
        X = rng.normal(size=(400, 8))
        y = rng.integers(0, 3, 400)
        gbt = GBTClassifier(n_rounds=12, max_depth=4).fit(X, y)
        Xb = gbt.binner_.transform(X)
        packed = gbt.packed_
        k = len(gbt.classes_)
        ref = packed.decision_scores(Xb, gbt.base_score_, gbt.learning_rate, k)
        out = np.empty_like(ref)
        got = packed.decision_scores(
            Xb, gbt.base_score_, gbt.learning_rate, k, out=out
        )
        assert got is out
        np.testing.assert_array_equal(got, ref)
        one = np.empty(k)
        for i in range(0, 400, 29):
            got_one = packed.decision_scores_one(
                Xb[i], gbt.base_score_, gbt.learning_rate, k, out=one
            )
            np.testing.assert_array_equal(got_one, ref[i])
