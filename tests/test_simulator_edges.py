"""Simulator edge cases: ties, zero-size jobs, release ordering."""

import numpy as np
import pytest

from repro.storage import Decision, PlacementPolicy, simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


class AlwaysSSD(PlacementPolicy):
    name = "always"

    def decide(self, job_index, ctx):
        return Decision(want_ssd=True)


class TestArrivalTies:
    def test_simultaneous_arrivals_processed_in_id_order(self):
        jobs = [
            make_job(1, arrival=100.0, duration=50.0, size=8 * GIB),
            make_job(0, arrival=100.0, duration=50.0, size=8 * GIB),
        ]
        trace = Trace(jobs)
        # Trace sorts by (arrival, job_id): job 0 first.
        assert trace[0].job_id == 0
        res = simulate(trace, AlwaysSSD(), capacity=8 * GIB)
        assert res.ssd_fraction[0] == 1.0
        assert res.ssd_fraction[1] == 0.0

    def test_release_exactly_at_arrival_frees_first(self):
        # Job 0 ends at t=100; job 1 arrives at t=100 and must fit.
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, size=10 * GIB),
            make_job(1, arrival=100.0, duration=10.0, size=10 * GIB),
        ]
        res = simulate(Trace(jobs), AlwaysSSD(), capacity=10 * GIB)
        assert res.ssd_fraction[1] == 1.0


class TestDegenerateJobs:
    def test_tiny_job_handled(self):
        trace = Trace([make_job(0, size=1.0, read_bytes=0.0, write_bytes=0.0,
                                read_ops=1.0)])
        res = simulate(trace, AlwaysSSD(), capacity=1e18)
        assert res.ssd_fraction[0] == 1.0

    def test_many_concurrent_small_jobs(self):
        jobs = [
            make_job(i, arrival=0.0, duration=1000.0, size=1 * GIB)
            for i in range(20)
        ]
        res = simulate(Trace(jobs), AlwaysSSD(), capacity=10 * GIB)
        # Exactly 10 fit fully; the rest spill entirely.
        assert int((res.ssd_fraction == 1.0).sum()) == 10
        assert res.n_spilled == 10

    def test_peak_usage_never_exceeds_capacity(self):
        rng = np.random.default_rng(5)
        jobs = [
            make_job(
                i,
                arrival=float(rng.uniform(0, 1000)),
                duration=float(rng.uniform(10, 500)),
                size=float(rng.uniform(0.1, 5) * GIB),
            )
            for i in range(200)
        ]
        cap = 3 * GIB
        res = simulate(Trace(jobs), AlwaysSSD(), capacity=cap)
        assert res.peak_ssd_used <= cap + 1e-6
