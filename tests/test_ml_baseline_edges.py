"""Additional lifetime-model behaviours and simulator interplay."""

import numpy as np
import pytest

from repro.baselines import LifetimeModel, LifetimePolicy
from repro.storage import simulate
from repro.units import GIB, HOUR
from repro.workloads import Trace, extract_features

from helpers import make_job


def _two_population_trace(n=120):
    """Half short-lived (5 min), half long-lived (5 h), distinguishable
    by the worker-count resource."""
    jobs = []
    for i in range(n):
        short = i % 2 == 0
        job = make_job(
            i,
            arrival=i * 50.0,
            duration=300.0 if short else 5 * HOUR,
            size=1 * GIB,
            pipeline="short" if short else "long",
        )
        resources = dict(job.resources)
        resources["bucket_sizing_num_workers"] = 8.0 if short else 256.0
        from dataclasses import replace

        jobs.append(replace(job, resources=resources))
    return Trace(jobs)


class TestLifetimeModelLearning:
    @pytest.fixture(scope="class")
    def setting(self):
        trace = _two_population_trace()
        features = extract_features(trace)
        model = LifetimeModel(n_rounds=10, max_depth=3).fit(features, trace.durations)
        return trace, features, model

    def test_separates_populations(self, setting):
        trace, features, model = setting
        mu, _ = model.predict(features)
        short_mask = np.array([j.pipeline == "short" for j in trace])
        assert np.median(mu[short_mask]) < np.median(mu[~short_mask])

    def test_ttl_between_populations_splits_admission(self, setting):
        trace, features, model = setting
        policy = LifetimePolicy(model, features, ttl=1 * HOUR)
        res = simulate(trace, policy, capacity=1e18)
        short_mask = np.array([j.pipeline == "short" for j in trace])
        admitted = res.ssd_fraction > 0
        # Short jobs mostly admitted, long jobs mostly rejected.
        assert admitted[short_mask].mean() > 0.8
        assert admitted[~short_mask].mean() < 0.2

    def test_eviction_limits_residency_of_underestimates(self, setting):
        trace, features, model = setting
        # Tiny TTL admits nothing.
        policy = LifetimePolicy(model, features, ttl=1.0)
        res = simulate(trace, policy, capacity=1e18)
        assert res.n_ssd_requested == 0

    def test_sigma_reflects_uncertainty(self, setting):
        _, features, model = setting
        _, sigma = model.predict(features)
        assert (sigma >= 0).all()
        assert np.isfinite(sigma).all()
