"""ASCII report rendering and CSV export."""

import numpy as np

from repro.analysis import render_series, render_table, write_csv


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4  # header, separator, two rows

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "== My Table =="

    def test_nan_rendering(self):
        out = render_table(["v"], [[float("nan")]])
        assert "nan" in out

    def test_scientific_for_extremes(self):
        out = render_table(["v"], [[1234567.0], [0.000001]])
        assert "e+06" in out or "e+6" in out
        assert "e-06" in out or "e-6" in out

    def test_row_length_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderSeries:
    def test_series_columns(self):
        out = render_series(
            [0.01, 0.1],
            {"ours": [1.0, 2.0], "baseline": [0.5, 1.0]},
            x_name="quota",
        )
        assert "quota" in out and "ours" in out and "baseline" in out
        assert len(out.splitlines()) == 4


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2"
        assert len(content) == 3
