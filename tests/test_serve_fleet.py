"""Fleet-scale serving: FleetRouter / PlacementWorker / transports.

The contract under test is the tentpole claim of the router refactor:
scatter-gathering the placement computation over N workers is a pure
refactor of the arithmetic — for any policy, engine mode, shard count,
worker count, and transport, the fleet roll-up is **bit-identical** to
the single-process :class:`~repro.serve.PlacementService`, including
across worker kills recovered from per-worker WAL/checkpoint state.

Also covers the :meth:`SimResult.merge` partition algebra directly
(random lane partitions reassemble the exact whole-run result), the
fleet edge cases (zero-lane workers, completes racing a worker
restart, duplicate submissions around recovery), snapshot/restore of a
live fleet, worker snapshot schema checks, and the CLI ``--workers``
surface including the Ctrl-C partial-roll-up exit contract.
"""

import os
import pickle

import numpy as np
import pytest

from repro.cli import main
from repro.serve import (
    FleetRouter,
    PlacementService,
    SnapshotMismatch,
    WorkerDied,
    worker_lanes,
)
from repro.storage.compiled import HAVE_NUMBA
from repro.storage.engine import SimResult
from repro.workloads import save_trace
from repro.workloads.streaming import materialize_trace

from test_serve_service import (
    assert_bit_identical,
    make_policy_builders,
    random_trace,
)

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

CAP = 55e9


@pytest.fixture(scope="module")
def trace():
    return materialize_trace(random_trace(7, n=260))


@pytest.fixture(scope="module")
def builders(trace):
    return make_policy_builders(trace, 7)


def _feed(svc, trace, lo, hi, step=21):
    for a in range(lo, hi, step):
        b = min(a + step, hi)
        svc.submit_batch(
            trace.arrivals[a:b], trace.durations[a:b], trace.sizes[a:b],
            trace.read_bytes[a:b], trace.write_bytes[a:b],
            trace.read_ops[a:b], pipelines=trace.pipelines[a:b],
        )


class TestWorkerLanes:
    def test_round_robin_partition(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            shards = int(rng.integers(1, 20))
            workers = int(rng.integers(1, 12))
            parts = worker_lanes(shards, workers)
            assert len(parts) == workers
            for w, lanes in enumerate(parts):
                assert np.array_equal(lanes % workers, np.full(lanes.size, w))
            joined = np.sort(np.concatenate(parts))
            assert np.array_equal(joined, np.arange(shards))

    def test_zero_lane_tail_workers(self):
        parts = worker_lanes(3, 5)
        assert [p.size for p in parts] == [1, 1, 1, 0, 0]


class TestBitIdentity:
    @pytest.mark.parametrize("pname", ("adaptive", "firstfit", "fixed"))
    @pytest.mark.parametrize("mode", ("batch", "scalar"))
    @pytest.mark.parametrize("shards", (1, 4))
    def test_matches_single_process(self, trace, builders, pname, mode, shards):
        base = PlacementService(
            builders[pname](), CAP, shards, mode=mode
        ).replay(trace, batch_jobs=29)
        for w in (1, 3):
            svc = FleetRouter(
                builders[pname](), CAP, shards, mode=mode, n_workers=w
            )
            got = svc.replay(trace, batch_jobs=29)
            svc.close()
            assert_bit_identical(base, got, f"{pname}/{mode}/s{shards}/W{w}")

    def test_subprocess_transport(self, trace, builders):
        base = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch"
        ).replay(trace, batch_jobs=29)
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch",
            n_workers=3, transport="subprocess",
        )
        got = svc.replay(trace, batch_jobs=29)
        svc.close()
        assert_bit_identical(base, got, "subprocess")

    def test_zero_lane_worker(self, trace, builders):
        base = PlacementService(
            builders["adaptive"](), CAP, 3, mode="batch"
        ).replay(trace, batch_jobs=29)
        svc = FleetRouter(builders["adaptive"](), CAP, 3, mode="batch",
                          n_workers=5)
        got = svc.replay(trace, batch_jobs=29)
        assert svc.pool.lanes_by_worker[4].size == 0
        svc.close()
        assert_bit_identical(base, got, "zero-lane")

    def test_completes_and_shocks(self, trace, builders):
        def drive(svc):
            svc.open(trace)
            for lo in range(0, 260, 23):
                hi = min(lo + 23, 260)
                _feed(svc, trace, lo, hi, step=23)
                if lo == 92:
                    svc.apply_shock(capacity=CAP * 0.5)
                if lo == 161:
                    svc.apply_shock(capacity=CAP)
                if lo >= 46:
                    for jid in (lo - 30, lo - 25, lo - 25):  # incl. duplicate
                        svc.complete(jid)
            return svc.result()

        for mode in ("batch", "scalar"):
            base = drive(PlacementService(builders["fixed"](), CAP, 4, mode=mode))
            svc = FleetRouter(builders["fixed"](), CAP, 4, mode=mode, n_workers=2)
            got = drive(svc)
            svc.close()
            assert_bit_identical(base, got, f"shock+complete/{mode}")

    @needs_numba
    def test_compiled_engine_fleet(self, trace, builders):
        base = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch", engine="compiled"
        ).replay(trace, batch_jobs=29)
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch",
            engine="compiled", n_workers=3,
        )
        got = svc.replay(trace, batch_jobs=29)
        svc.close()
        assert_bit_identical(base, got, "compiled")


class TestMergePartitions:
    """SimResult.merge over random lane partitions of a real run."""

    @pytest.fixture(scope="class")
    def whole(self, trace, builders):
        svc = PlacementService(builders["adaptive"](), CAP, 6, mode="batch")
        svc.open(trace)
        _feed(svc, trace, 0, 260)
        res = svc.result()
        lanes_col = svc.log.lanes.copy()
        return res, lanes_col, svc.rates

    def _parts(self, res, lanes_col, groups):
        parts = []
        for gi, lanes in enumerate(groups):
            ji = np.flatnonzero(np.isin(lanes_col, lanes))
            parts.append(SimResult(
                policy_name=res.policy_name,
                capacity=float(res.lane_capacities[lanes].sum()),
                n_jobs=ji.size,
                baseline_tco=0.0, realized_tco=0.0,
                baseline_tcio=0.0, realized_hdd_tcio=0.0,
                # counters sum exactly in merge; park the totals on one part
                n_ssd_requested=res.n_ssd_requested if gi == 0 else 0,
                n_spilled=res.n_spilled if gi == 0 else 0,
                peak_ssd_used=0.0,
                ssd_fraction=res.ssd_fraction[ji].copy(),
                n_shards=max(lanes.size, 1),
                lane_capacities=res.lane_capacities[lanes].copy(),
                job_indices=ji,
                lane_indices=lanes,
            ))
        return parts

    def test_random_partitions_reassemble(self, trace, whole):
        res, lanes_col, rates = whole
        rng = np.random.default_rng(1)
        for _ in range(20):
            k = int(rng.integers(1, 7))
            owner = rng.integers(0, k, size=6)
            groups = [np.flatnonzero(owner == g) for g in range(k)]
            merged = SimResult.merge(
                self._parts(res, lanes_col, groups),
                trace=trace, rates=rates,
                # the router passes capacity through rather than
                # re-summing lane slices, whose total is not float-exact
                capacity=res.capacity,
                peak_ssd_used=res.peak_ssd_used,
                n_jobs=res.n_jobs, n_shards=res.n_shards,
            )
            assert_bit_identical(res, merged, f"merge k={k}")
            assert np.array_equal(merged.lane_capacities, res.lane_capacities)
            assert merged.capacity == res.capacity

    def test_overlapping_jobs_rejected(self, trace, whole):
        res, lanes_col, rates = whole
        groups = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        parts = self._parts(res, lanes_col, groups)
        dup = parts[0].job_indices[:1]
        parts[1].job_indices = np.concatenate([parts[1].job_indices, dup])
        parts[1].ssd_fraction = np.concatenate(
            [parts[1].ssd_fraction, res.ssd_fraction[dup]]
        )
        with pytest.raises(ValueError, match="overlap"):
            SimResult.merge(parts, trace=trace, rates=rates, n_jobs=res.n_jobs)

    def test_incomplete_coverage_rejected(self, trace, whole):
        res, lanes_col, rates = whole
        groups = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        parts = self._parts(res, lanes_col, groups)[:1]
        with pytest.raises(ValueError, match="complete partition|lane"):
            SimResult.merge(parts, trace=trace, rates=rates,
                            n_jobs=res.n_jobs, n_shards=res.n_shards)


class TestFailover:
    def _drive_with_kill(self, svc, trace, kill_at=None, kill_worker=1):
        svc.open(trace)
        for lo in range(0, 260, 23):
            hi = min(lo + 23, 260)
            _feed(svc, trace, lo, hi, step=23)
            if kill_at is not None and lo == kill_at:
                svc.kill_worker(kill_worker)
            if lo >= 46:
                svc.complete(lo - 30)
        return svc.result()

    @pytest.fixture(scope="class")
    def base(self, trace, builders):
        return self._drive_with_kill(
            PlacementService(builders["adaptive"](), CAP, 4, mode="batch"), trace
        )

    @pytest.mark.parametrize("transport", ("inprocess", "subprocess"))
    @pytest.mark.parametrize("every", (5, None))
    def test_transparent_recovery(self, trace, builders, base, tmp_path,
                                  transport, every):
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch", n_workers=3,
            transport=transport, worker_dir=str(tmp_path),
            worker_checkpoint_every=every,
        )
        got = self._drive_with_kill(svc, trace, kill_at=115)
        svc.close()
        assert_bit_identical(base, got, f"kill/{transport}/every={every}")
        names = os.listdir(tmp_path)
        assert any(n.endswith(".wal") for n in names)

    def test_complete_to_crashed_worker(self, trace, builders, base, tmp_path):
        """A complete() whose lane owner is dead recovers it in-line."""
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch", n_workers=3,
            worker_dir=str(tmp_path), worker_checkpoint_every=8,
        )
        svc.open(trace)
        got = None
        for lo in range(0, 260, 23):
            hi = min(lo + 23, 260)
            _feed(svc, trace, lo, hi, step=23)
            if lo == 115:
                # kill every worker: whichever lane the next complete
                # lands on, its owner is down
                for w in range(3):
                    svc.kill_worker(w)
                    assert not svc.worker_alive(w)
            if lo >= 46:
                svc.complete(lo - 30)
        got = svc.result()
        svc.close()
        assert_bit_identical(base, got, "complete-to-dead")

    def test_duplicate_completes_racing_restart(self, trace, builders,
                                                tmp_path):
        """Duplicate deliveries straddling a kill+recover stay idempotent."""
        def drive(svc, kill=False):
            svc.open(trace)
            for lo in range(0, 260, 23):
                hi = min(lo + 23, 260)
                _feed(svc, trace, lo, hi, step=23)
                if lo >= 69:
                    svc.complete(lo - 40)
                    if kill and lo == 115:
                        svc.kill_worker(1)
                    svc.complete(lo - 40)  # duplicate, maybe post-restart
            return svc.result()

        base = drive(PlacementService(builders["fixed"](), CAP, 4, mode="batch"))
        svc = FleetRouter(builders["fixed"](), CAP, 4, mode="batch",
                          n_workers=3, worker_dir=str(tmp_path))
        got = drive(svc, kill=True)
        svc.close()
        assert_bit_identical(base, got, "dup-complete-restart")

    def test_explicit_recover_worker(self, trace, builders, tmp_path):
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch", n_workers=3,
            transport="subprocess", worker_dir=str(tmp_path),
            worker_checkpoint_every=8,
        )
        svc.open(trace)
        _feed(svc, trace, 0, 130)
        svc.kill_worker(2)
        assert not svc.worker_alive(2)
        svc.recover_worker(2)
        assert svc.worker_alive(2)
        _feed(svc, trace, 130, 260)
        got = svc.result()
        svc.close()
        base_svc = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        base_svc.open(trace)
        _feed(base_svc, trace, 0, 260)
        assert_bit_identical(base_svc.result(), got, "explicit-recover")

    def test_worker_died_without_worker_dir(self, trace, builders):
        svc = FleetRouter(builders["fixed"](), CAP, 4, mode="batch", n_workers=2)
        svc.open(trace)
        _feed(svc, trace, 0, 46)
        svc.kill_worker(0)
        with pytest.raises(WorkerDied, match="no checkpoint or WAL"):
            _feed(svc, trace, 46, 92)
            svc.drain()
        svc.close()


class TestSnapshots:
    def test_snapshot_restore_mid_run(self, trace, builders):
        svc0 = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        svc0.open(trace)
        _feed(svc0, trace, 0, 260)
        base = svc0.result()

        svc = FleetRouter(builders["adaptive"](), CAP, 4, mode="batch",
                          n_workers=3)
        svc.open(trace)
        _feed(svc, trace, 0, 130)
        blob = pickle.dumps(svc.snapshot())
        _feed(svc, trace, 130, 260)
        r_orig = svc.result()
        svc.close()
        assert_bit_identical(base, r_orig, "snap-original")

        svc2 = FleetRouter.restore(pickle.loads(blob))
        _feed(svc2, trace, 130, 260)
        r_rest = svc2.result()
        svc2.close()
        assert_bit_identical(base, r_rest, "snap-restored")

    def test_service_level_recover(self, trace, builders, tmp_path):
        svc0 = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        svc0.open(trace)
        _feed(svc0, trace, 0, 260)
        base = svc0.result()

        wal_path = str(tmp_path / "svc.wal")
        ck_path = str(tmp_path / "svc.ckpt")
        svc = FleetRouter(builders["adaptive"](), CAP, 4, mode="batch",
                          n_workers=3, wal=wal_path)
        svc.open(trace)
        _feed(svc, trace, 0, 130)
        svc.checkpoint(ck_path)
        _feed(svc, trace, 130, 190)
        svc.wal.close()
        del svc  # crash
        rec = FleetRouter.recover(ck_path, wal_path)
        _feed(rec, trace, 190, 260)
        r_rec = rec.result()
        rec.close()
        assert_bit_identical(base, r_rec, "fleet-recover")

    def test_worker_schema_mismatch(self, trace, builders):
        svc = FleetRouter(builders["fixed"](), CAP, 2, mode="batch", n_workers=2)
        svc.open(trace)
        _feed(svc, trace, 0, 46)
        payload = svc.pool.transports[0].request({"op": "state"})["payload"]
        payload["__schema__"] = 999
        with pytest.raises(SnapshotMismatch):
            svc.pool.transports[0].request({"op": "restore",
                                            "payload": payload})
        svc.close()

    def test_rejects_bad_config(self, builders):
        with pytest.raises(ValueError):
            FleetRouter(builders["fixed"](), CAP, 2, n_workers=0)
        with pytest.raises(ValueError):
            FleetRouter(builders["fixed"](), CAP, 2, n_workers=2,
                        transport="carrier-pigeon")


class TestFleetCli:
    @pytest.fixture()
    def trace_path(self, trace, tmp_path):
        path = tmp_path / "trace"
        save_trace(trace, str(path))
        return str(path) + ".npz"

    def test_serve_workers_flag(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--quota", "0.1",
                     "--shards", "4", "--batch", "64", "--workers", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 3 workers over inprocess transport" in out
        assert "final roll-up" in out

    def test_serve_workers_matches_single(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--quota", "0.1",
                     "--shards", "4", "--batch", "64"]) == 0
        single = capsys.readouterr().out
        assert main(["serve", "--trace", trace_path, "--quota", "0.1",
                     "--shards", "4", "--batch", "64", "--workers", "2"]) == 0
        fleet = capsys.readouterr().out
        pick = [ln for ln in single.splitlines() if "final roll-up" in ln]
        assert pick and pick == [
            ln for ln in fleet.splitlines() if "final roll-up" in ln
        ]

    def test_loadgen_workers_flag(self, trace_path, capsys):
        assert main(["loadgen", "--trace", trace_path, "--quota", "0.1",
                     "--batch", "64", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 workers over inprocess transport" in out

    def test_chaos_worker_kill_scenario(self, trace_path, capsys):
        assert main(["chaos", "--trace", trace_path, "--jobs", "260",
                     "--scenario", "worker_kill", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "worker_kill" in out

    def test_keyboard_interrupt_drains_fleet_exits_130(
        self, trace_path, capsys, monkeypatch
    ):
        real = FleetRouter.submit_batch
        calls = {"n": 0}

        def flaky(self, *a, **kw):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(self, *a, **kw)

        monkeypatch.setattr(FleetRouter, "submit_batch", flaky)
        rc = main(["serve", "--trace", trace_path, "--batch", "64",
                   "--workers", "2"])
        assert rc == 130
        out = capsys.readouterr().out
        assert "partial roll-up (interrupted)" in out
        assert "fleet: 2 workers" in out


class TestPipelineServe:
    def test_serve_n_workers_builds_fleet(self, trace, builders):
        # exercised through the service ctor contract rather than a full
        # trained pipeline: FleetRouter must accept the same kwargs
        # ByomPipeline.serve forwards
        svc = FleetRouter(
            builders["adaptive"](), CAP, 4, mode="batch",
            categorizer=None, max_pending=None,
            n_workers=2, transport="inprocess", worker_dir=None,
        )
        assert svc.n_workers == 2
        svc.close()
