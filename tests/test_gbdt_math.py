"""Numerical correctness of the boosting mathematics."""

import numpy as np
import pytest

from repro.ml import GBTClassifier, GBTRegressor, HistogramTree, QuantileBinner


class TestNewtonStep:
    def test_leaf_value_is_newton_step(self):
        """A no-split tree's root value must be -G/(H + l2)."""
        n = 100
        Xb = np.zeros((n, 1), dtype=np.uint8)
        g = np.full(n, 2.0)
        h = np.full(n, 0.5)
        tree = HistogramTree.fit(Xb, g, h, max_depth=3, l2_reg=1.0)
        expected = -g.sum() / (h.sum() + 1.0)
        assert tree.value[0] == pytest.approx(expected)

    def test_split_children_get_partition_stats(self):
        """After one split on a binary feature, leaf values equal the
        per-partition Newton steps."""
        n = 200
        Xb = np.zeros((n, 1), dtype=np.uint8)
        Xb[n // 2 :, 0] = 1
        g = np.where(Xb[:, 0] == 0, -3.0, 5.0)
        h = np.ones(n)
        tree = HistogramTree.fit(Xb, g, h, max_depth=1, l2_reg=1.0, min_samples_leaf=1)
        assert tree.feature[0] == 0
        left_expected = -(-3.0 * (n // 2)) / (n // 2 + 1.0)
        right_expected = -(5.0 * (n // 2)) / (n // 2 + 1.0)
        assert tree.value[1] == pytest.approx(left_expected)
        assert tree.value[2] == pytest.approx(right_expected)


class TestRegressorConvergence:
    def test_converges_to_mean_per_group(self):
        """Enough rounds at lr<1 converge to the groupwise means."""
        rng = np.random.default_rng(0)
        n = 400
        X = (rng.random(n) > 0.5).astype(float).reshape(-1, 1)
        y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
        reg = GBTRegressor(n_rounds=40, max_depth=1, learning_rate=0.5,
                           min_samples_leaf=1).fit(X, y)
        pred = reg.predict(X)
        assert pred[X[:, 0] > 0.5].mean() == pytest.approx(10.0, abs=0.1)
        assert pred[X[:, 0] <= 0.5].mean() == pytest.approx(-10.0, abs=0.1)


class TestClassifierCalibration:
    def test_probabilities_approach_empirical_rates(self):
        """On a two-value feature with known class rates, predicted
        probabilities approach the empirical conditional rates."""
        rng = np.random.default_rng(1)
        n = 4000
        X = (rng.random(n) > 0.5).astype(float).reshape(-1, 1)
        p_true = np.where(X[:, 0] > 0.5, 0.9, 0.2)
        y = (rng.random(n) < p_true).astype(int)
        clf = GBTClassifier(n_rounds=30, max_depth=1, learning_rate=0.5,
                            min_samples_leaf=1).fit(X, y)
        proba = clf.predict_proba(X)
        pos_col = int(np.flatnonzero(clf.classes_ == 1)[0])
        hi = proba[X[:, 0] > 0.5, pos_col].mean()
        lo = proba[X[:, 0] <= 0.5, pos_col].mean()
        assert hi == pytest.approx(0.9, abs=0.05)
        assert lo == pytest.approx(0.2, abs=0.05)

    def test_prior_initialization(self):
        """With zero rounds the classifier predicts class priors."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 2))
        y = (rng.random(300) < 0.3).astype(int)
        # n_rounds=0 -> probabilities equal the empirical priors.
        clf = GBTClassifier(n_rounds=0).fit(X, y)
        proba = clf.predict_proba(X)
        pos_col = int(np.flatnonzero(clf.classes_ == 1)[0])
        assert proba[:, pos_col].std() == pytest.approx(0.0, abs=1e-12)
        assert proba[0, pos_col] == pytest.approx(y.mean(), abs=1e-9)
