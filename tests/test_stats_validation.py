"""Bootstrap statistics and trace validation."""

import numpy as np
import pytest

from repro.analysis import BootstrapCI, bootstrap_savings_ci, summarize_across_seeds
from repro.workloads import Trace, trace_statistics, validate_trace

from helpers import make_job


class TestBootstrapCI:
    def test_point_estimate_matches_direct(self, rng):
        c_hdd = rng.uniform(1, 2, 500)
        realized = c_hdd * rng.uniform(0.8, 1.0, 500)
        ci = bootstrap_savings_ci(c_hdd, realized, n_boot=200)
        direct = 100 * (c_hdd.sum() - realized.sum()) / c_hdd.sum()
        assert ci.point == pytest.approx(direct)

    def test_interval_contains_point(self, rng):
        c_hdd = rng.uniform(1, 2, 500)
        realized = c_hdd * rng.uniform(0.8, 1.0, 500)
        ci = bootstrap_savings_ci(c_hdd, realized, n_boot=500)
        assert ci.point in ci
        assert ci.lower <= ci.upper

    def test_deterministic_with_seed(self, rng):
        c_hdd = rng.uniform(1, 2, 100)
        realized = c_hdd * 0.9
        a = bootstrap_savings_ci(c_hdd, realized, seed=7)
        b = bootstrap_savings_ci(c_hdd, realized, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_narrower_with_more_data(self, rng):
        base = rng.uniform(1, 2, 4000)
        ci_small = bootstrap_savings_ci(
            base[:100], base[:100] * rng.uniform(0.5, 1.0, 100), n_boot=400, seed=1
        )
        ci_large = bootstrap_savings_ci(
            base, base * rng.uniform(0.5, 1.0, 4000), n_boot=400, seed=1
        )
        assert ci_large.width < ci_small.width

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            bootstrap_savings_ci(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            bootstrap_savings_ci(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            bootstrap_savings_ci(np.ones(3), np.ones(3), level=1.5)


class TestSummarizeAcrossSeeds:
    def test_summary_fields(self):
        s = summarize_across_seeds({0: 1.0, 1: 2.0, 2: 3.0})
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["n"] == 3

    def test_single_value_zero_std(self):
        assert summarize_across_seeds({0: 5.0})["std"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_across_seeds({})


class TestTraceStatistics:
    def test_counts(self, small_trace):
        s = trace_statistics(small_trace)
        assert s.n_jobs == len(small_trace)
        assert s.n_pipelines >= 1
        assert s.peak_ssd_usage == pytest.approx(small_trace.peak_ssd_usage())

    def test_generated_trace_validates(self, small_trace):
        stats = validate_trace(small_trace)
        assert 0.05 <= stats.positive_savings_fraction <= 0.95
        assert stats.density_dynamic_range >= 1.0

    def test_degenerate_trace_rejected(self):
        # All-identical cold jobs: no savings mix, no density spread.
        jobs = [
            make_job(i, arrival=i * 100.0, duration=50_000.0, size=10 * 2**30,
                     read_ops=5.0, write_bytes=20 * 2**30)
            for i in range(20)
        ]
        with pytest.raises(ValueError):
            validate_trace(Trace(jobs))

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            trace_statistics(Trace([]))

    def test_churn_detected(self, two_week_trace):
        s = trace_statistics(two_week_trace)
        assert 0.0 <= s.churn_fraction <= 1.0
