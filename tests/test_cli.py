"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--cluster", "2", "--out", "/tmp/x"]
        )
        assert args.command == "generate"
        assert args.cluster == 2

    def test_stats_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])

    def test_sweep_quota_list(self):
        args = build_parser().parse_args(["sweep", "--quotas", "0.01", "0.5"])
        assert args.quotas == [0.01, 0.5]


class TestCommands:
    def test_generate_and_stats_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace"
        assert main(["generate", "--cluster", "0", "--weeks", "0.3",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured

        assert main(["stats", "--trace", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "positive savings" in captured
        assert "peak SSD usage" in captured
