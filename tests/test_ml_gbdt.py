"""Gradient boosted trees: classifier and regressor behaviour."""

import numpy as np
import pytest

from repro.ml import GBTClassifier, GBTRegressor, accuracy


@pytest.fixture(scope="module")
def multiclass_data():
    rng = np.random.default_rng(3)
    n = 4000
    X = rng.normal(size=(n, 10))
    y = np.digitize(X[:, 0] + 0.3 * X[:, 1] ** 2, [-1.0, 0.0, 1.0])
    return X[:3000], y[:3000], X[3000:], y[3000:]


class TestGBTClassifier:
    def test_beats_majority_class(self, multiclass_data):
        Xtr, ytr, Xte, yte = multiclass_data
        clf = GBTClassifier(n_rounds=10, max_depth=4).fit(Xtr, ytr)
        acc = accuracy(yte, clf.predict(Xte))
        majority = np.bincount(yte).max() / len(yte)
        assert acc > majority + 0.2

    def test_proba_sums_to_one(self, multiclass_data):
        Xtr, ytr, Xte, _ = multiclass_data
        clf = GBTClassifier(n_rounds=5, max_depth=3).fit(Xtr, ytr)
        proba = clf.predict_proba(Xte)
        assert proba.shape == (len(Xte), len(clf.classes_))
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_predict_in_training_classes(self, multiclass_data):
        Xtr, ytr, Xte, _ = multiclass_data
        clf = GBTClassifier(n_rounds=3).fit(Xtr, ytr)
        assert set(np.unique(clf.predict(Xte))) <= set(clf.classes_)

    def test_non_contiguous_labels(self, rng):
        X = rng.normal(size=(500, 4))
        y = np.where(X[:, 0] > 0, 7, 3)  # labels {3, 7}
        clf = GBTClassifier(n_rounds=5).fit(X, y)
        pred = clf.predict(X)
        assert set(np.unique(pred)) <= {3, 7}
        assert accuracy(y, pred) > 0.9

    def test_single_class_degenerate(self, rng):
        X = rng.normal(size=(100, 3))
        y = np.zeros(100, dtype=int)
        clf = GBTClassifier(n_rounds=3).fit(X, y)
        assert (clf.predict(X) == 0).all()
        assert np.allclose(clf.predict_proba(X), 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GBTClassifier().fit(np.zeros((0, 3)), np.zeros(0))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            GBTClassifier().fit(rng.normal(size=(10, 3)), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GBTClassifier().predict(np.zeros((2, 3)))

    def test_n_trees_accounting(self, multiclass_data):
        Xtr, ytr, _, _ = multiclass_data
        clf = GBTClassifier(n_rounds=4).fit(Xtr, ytr)
        assert clf.n_trees == 4 * len(clf.classes_)

    def test_more_rounds_help_or_tie(self, multiclass_data):
        Xtr, ytr, Xte, yte = multiclass_data
        small = GBTClassifier(n_rounds=2, max_depth=3).fit(Xtr, ytr)
        big = GBTClassifier(n_rounds=12, max_depth=3).fit(Xtr, ytr)
        assert accuracy(yte, big.predict(Xte)) >= accuracy(yte, small.predict(Xte)) - 0.02


class TestGBTRegressor:
    def test_fits_nonlinear_function(self, rng):
        n = 3000
        X = rng.normal(size=(n, 5))
        y = X[:, 0] ** 2 + 2 * X[:, 1] + 0.05 * rng.normal(size=n)
        reg = GBTRegressor(n_rounds=25, max_depth=4).fit(X[:2000], y[:2000])
        pred = reg.predict(X[2000:])
        resid_var = np.var(pred - y[2000:])
        assert resid_var < 0.3 * np.var(y[2000:])

    def test_constant_target(self, rng):
        X = rng.normal(size=(200, 3))
        y = np.full(200, 5.0)
        reg = GBTRegressor(n_rounds=3).fit(X, y)
        assert reg.predict(X) == pytest.approx(np.full(200, 5.0), abs=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GBTRegressor().predict(np.zeros((2, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GBTRegressor().fit(np.zeros((0, 3)), np.zeros(0))
