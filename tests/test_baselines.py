"""Baseline policies: FirstFit, Heuristic, ML lifetime baseline."""

import numpy as np
import pytest

from repro.baselines import (
    CategoryAdmissionPolicy,
    FirstFitPolicy,
    LifetimeModel,
    LifetimePolicy,
)
from repro.storage import simulate
from repro.units import GIB, HOUR
from repro.workloads import Trace, extract_features

from helpers import make_job


class TestFirstFit:
    def test_admits_everything_with_space(self, handmade_trace):
        res = simulate(handmade_trace, FirstFitPolicy(), capacity=1e18)
        assert res.n_ssd_requested == len(handmade_trace)
        assert res.n_spilled == 0

    def test_skips_jobs_that_do_not_fit(self):
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, size=8 * GIB),
            make_job(1, arrival=10.0, duration=100.0, size=8 * GIB),
            make_job(2, arrival=20.0, duration=100.0, size=1 * GIB),
        ]
        res = simulate(Trace(jobs), FirstFitPolicy(), capacity=10 * GIB)
        # Job 1 does not fit (only 2 GiB free) -> HDD; job 2 fits.
        assert res.ssd_fraction[0] == 1.0
        assert res.ssd_fraction[1] == 0.0
        assert res.ssd_fraction[2] == 1.0
        assert res.n_spilled == 0

    def test_no_spillover_ever(self, small_trace):
        res = simulate(
            small_trace, FirstFitPolicy(), capacity=0.01 * small_trace.peak_ssd_usage()
        )
        assert res.n_spilled == 0


class TestHeuristic:
    def test_seeded_admission_prefers_high_savings_pipeline(self):
        # Training: pipeline "hot" saves money, "cold" loses it.
        train_jobs = [
            make_job(i, arrival=i * 10.0, duration=60.0, size=1 * GIB,
                     read_ops=200_000.0, pipeline="hot")
            for i in range(20)
        ] + [
            make_job(100 + i, arrival=i * 10.0, duration=40_000.0, size=50 * GIB,
                     read_ops=10.0, write_bytes=60 * GIB, pipeline="cold")
            for i in range(20)
        ]
        train = Trace(train_jobs)
        test_jobs = [
            make_job(0, arrival=0.0, read_ops=200_000.0, pipeline="hot"),
            make_job(1, arrival=1.0, duration=40_000.0, size=50 * GIB,
                     read_ops=10.0, write_bytes=60 * GIB, pipeline="cold"),
        ]
        test = Trace(test_jobs)
        res = simulate(test, CategoryAdmissionPolicy(train), capacity=1e18)
        assert res.ssd_fraction[0] > 0.0
        assert res.ssd_fraction[1] == 0.0

    def test_without_history_nothing_admitted_initially(self, handmade_trace):
        policy = CategoryAdmissionPolicy(train_trace=None)
        res = simulate(handmade_trace, policy, capacity=1e18)
        # No seed and refresh interval longer than the trace: all HDD.
        assert res.n_ssd_requested == 0

    def test_online_refresh_adapts(self):
        # No training seed, but a long run of profitable jobs: after the
        # refresh interval the category must enter the admission set.
        jobs = [
            make_job(i, arrival=i * 100.0, duration=50.0, size=1 * GIB,
                     read_ops=500_000.0, pipeline="p")
            for i in range(200)
        ]
        trace = Trace(jobs)
        policy = CategoryAdmissionPolicy(train_trace=None, refresh_interval=1000.0)
        res = simulate(trace, policy, capacity=1e18)
        assert res.ssd_fraction[:5].sum() == 0.0  # before first refresh
        assert res.ssd_fraction[50:].mean() > 0.9  # after adaptation

    def test_capacity_bounds_admission_set(self):
        # Two profitable pipelines but capacity for only one: the
        # higher-savings one wins.
        train_jobs = []
        for i in range(20):
            train_jobs.append(
                make_job(i, arrival=i * 50.0, duration=100.0, size=2 * GIB,
                         read_ops=900_000.0, pipeline="big-saver")
            )
            train_jobs.append(
                make_job(100 + i, arrival=i * 50.0, duration=100.0, size=2 * GIB,
                         read_ops=100_000.0, pipeline="small-saver")
            )
        train = Trace(train_jobs)
        test = Trace([
            make_job(0, arrival=0.0, read_ops=900_000.0, pipeline="big-saver"),
            make_job(1, arrival=1.0, read_ops=100_000.0, pipeline="small-saver"),
        ])
        # Average concurrent usage of one pipeline ~ 2 GiB * 100s * 20 / 1050s.
        policy = CategoryAdmissionPolicy(train)
        res = simulate(test, policy, capacity=2 * GIB)
        assert res.ssd_fraction[0] > 0.0
        assert res.ssd_fraction[1] == 0.0


class TestLifetimeBaseline:
    @pytest.fixture(scope="class")
    def trained(self, two_week_trace):
        from repro.workloads import week_split

        features = extract_features(two_week_trace)
        train, train_idx, test, test_idx = week_split(two_week_trace)
        model = LifetimeModel(n_rounds=8).fit(
            features.take(train_idx), train.durations
        )
        return model, test, features.take(test_idx)

    def test_prediction_positive(self, trained):
        model, test, features = trained
        mu, sigma = model.predict(features)
        assert (mu >= 0).all()
        assert (sigma >= 0).all()

    def test_predictions_correlate_with_truth(self, trained):
        model, test, features = trained
        mu, _ = model.predict(features)
        corr = np.corrcoef(np.log1p(mu), np.log1p(test.durations))[0, 1]
        assert corr > 0.5

    def test_ttl_gates_admission(self, trained):
        model, test, features = trained
        policy = LifetimePolicy(model, features, ttl=1 * HOUR)
        res = simulate(test, policy, capacity=1e18)
        mu, sigma = model.predict(features)
        expected = (mu + sigma) < 1 * HOUR
        assert res.n_ssd_requested == int(expected.sum())

    def test_eviction_bounds_residency(self, trained):
        model, test, features = trained
        policy = LifetimePolicy(model, features, ttl=1 * HOUR)
        res = simulate(test, policy, capacity=1e18)
        admitted = res.ssd_fraction > 0
        if admitted.any():
            # Evicted jobs have fraction < 1 when mu+sigma < duration.
            assert (res.ssd_fraction[admitted] <= 1.0).all()

    def test_rejects_bad_ttl(self, trained):
        model, _, features = trained
        with pytest.raises(ValueError):
            LifetimePolicy(model, features, ttl=0.0)

    def test_feature_trace_mismatch_raises(self, trained, handmade_trace):
        model, _, features = trained
        policy = LifetimePolicy(model, features, ttl=1 * HOUR)
        with pytest.raises(ValueError):
            simulate(handmade_trace, policy, capacity=1e18)
