"""Docs link check: every relative link in the markdown docs resolves.

Scans ``README.md`` and ``docs/*.md`` for markdown links and asserts
that relative targets (files, optionally with ``#anchors``) exist in
the repository.  External (``http(s)``) links and pure in-page anchors
are skipped — this is a repo-consistency check, not a crawler.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target), ignoring images' leading "!".
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


def test_docs_tree_exists():
    """The PR-4 docs tree is present and non-trivial."""
    docs = REPO_ROOT / "docs"
    for name in ("architecture.md", "performance.md", "sharding.md",
                 "streaming.md"):
        page = docs / name
        assert page.exists(), f"missing docs page {name}"
        assert len(page.read_text()) > 500, f"docs page {name} is a stub"


@pytest.mark.parametrize("md", _markdown_files(), ids=lambda p: p.name)
def test_relative_links_resolve(md: Path):
    broken = []
    for target in _relative_links(md):
        resolved = (md.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{md.relative_to(REPO_ROOT)}: broken links {broken}"


def test_markdown_files_have_links():
    """Sanity: the scanner actually finds links (regex not silently dead)."""
    total = sum(len(_relative_links(md)) for md in _markdown_files())
    assert total >= 5
