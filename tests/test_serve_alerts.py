"""Deterministic alerting and SLO burn-rate accounting.

Unit layer: the rule/SLO condition math and the ok -> pending ->
firing -> resolved state machine, driven tick by tick against a raw
registry.  Property layer: an alert manager attached to a live service
produces a **bit-identical event stream** across policy x engine mode
x worker count x transport (evaluation reads only pinned,
mode-invariant metrics on the logical clock), and the stream continues
exactly across WAL checkpoint recovery — no reset, no double-fire.
The chaos layer asserts each named scenario fires exactly its expected
alert set and that clean runs emit zero events.
"""

import json
from bisect import bisect_left

import pytest

from repro.serve import (
    AlertManager,
    AlertRule,
    FleetRouter,
    MetricsRegistry,
    PlacementService,
    SloSpec,
    default_alert_rules,
    expected_alerts,
    load_alert_config,
)
from repro.serve.scenarios import get_scenario, run_scenario

from test_serve_service import make_policy_builders, random_trace

CAP = 55e9


@pytest.fixture(scope="module")
def trace():
    return random_trace(21, n=240)


@pytest.fixture(scope="module")
def builders(trace):
    return make_policy_builders(trace, 21)


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown alert op"):
            AlertRule("r", "m", op="~")
        with pytest.raises(ValueError, match="unknown alert kind"):
            AlertRule("r", "m", kind="derivative")
        with pytest.raises(ValueError, match="durations"):
            AlertRule("r", "m", for_duration=-1.0)
        with pytest.raises(ValueError, match="quantile"):
            AlertRule("r", "m", quantile=1.5)

    def test_value_from_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(7)
        reg.gauge("depth").set(2.5)
        assert AlertRule("a", "jobs_total").value_from(reg) == 7
        assert AlertRule("b", "depth").value_from(reg) == 2.5
        assert AlertRule("c", "missing").value_from(reg) is None

    def test_value_from_labeled_metric(self):
        reg = MetricsRegistry()
        reg.gauge("occ", labels={"lane": 2}).set(0.75)
        rule = AlertRule("r", 'occ{lane="2"}')
        assert rule.value_from(reg) == 0.75
        assert AlertRule("r", 'occ{lane="0"}').value_from(reg) is None

    def test_value_from_histogram_count_or_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 0.5, 1.5, 9.0):
            h.observe(v)
        assert AlertRule("n", "lat").value_from(reg) == 4
        q = AlertRule("q", "lat", quantile=0.5).value_from(reg)
        assert q == h.quantile(0.5)

    def test_dict_round_trip(self):
        rule = AlertRule(
            "cap", 'serve_lane_free_bytes{lane="1"}', op="<=",
            threshold=5e9, kind="rate", for_duration=30.0,
            clear_duration=60.0, quantile=None, description="low free",
        )
        clone = AlertRule.from_dict(rule.to_dict())
        for attr in ("name", "metric", "op", "threshold", "kind",
                     "for_duration", "clear_duration", "quantile",
                     "description"):
            assert getattr(clone, attr) == getattr(rule, attr), attr


def _tick(am, reg, clock):
    return am.evaluate(reg, clock=clock)


class TestStateMachine:
    def _setup(self, **rule_kw):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        am = AlertManager([AlertRule("deep", "depth", op=">",
                                     threshold=5.0, **rule_kw)])
        return reg, g, am

    def test_immediate_fire_and_resolve(self):
        reg, g, am = self._setup()
        g.set(1.0)
        assert _tick(am, reg, 0.0) == []
        g.set(10.0)
        new = _tick(am, reg, 1.0)
        assert [ev["event"] for ev in new] == ["pending", "firing"]
        assert am.firing() == ["deep"]
        g.set(1.0)
        new = _tick(am, reg, 2.0)
        assert [ev["event"] for ev in new] == ["resolved"]
        assert am.firing() == []
        assert am.fired() == ["deep"]
        # Events carry the value and threshold that tripped them.
        fire = [ev for ev in am.events if ev["event"] == "firing"][0]
        assert fire["value"] == 10.0 and fire["threshold"] == 5.0
        assert fire["rule"] == "deep"

    def test_for_duration_hysteresis(self):
        reg, g, am = self._setup(for_duration=10.0)
        g.set(10.0)
        assert [ev["event"] for ev in _tick(am, reg, 0.0)] == ["pending"]
        assert _tick(am, reg, 5.0) == []
        assert am.firing() == []
        assert [ev["event"] for ev in _tick(am, reg, 10.0)] == ["firing"]

    def test_pending_clears_silently(self):
        reg, g, am = self._setup(for_duration=10.0)
        g.set(10.0)
        _tick(am, reg, 0.0)
        g.set(1.0)
        assert _tick(am, reg, 1.0) == []
        assert am.fired() == []
        # The next breach starts a fresh pending window.
        g.set(10.0)
        assert [ev["event"] for ev in _tick(am, reg, 2.0)] == ["pending"]
        assert _tick(am, reg, 11.0) == []  # 9s < for_duration
        assert [ev["event"] for ev in _tick(am, reg, 12.0)] == ["firing"]

    def test_clear_duration_holds_the_alert(self):
        reg, g, am = self._setup(clear_duration=10.0)
        g.set(10.0)
        _tick(am, reg, 0.0)
        assert am.firing() == ["deep"]
        g.set(1.0)
        assert _tick(am, reg, 1.0) == []  # clear window opens
        g.set(10.0)
        assert _tick(am, reg, 5.0) == []  # re-breach cancels the clear
        g.set(1.0)
        assert _tick(am, reg, 6.0) == []  # clear window reopens at 6
        assert _tick(am, reg, 15.0) == []  # 9s < clear_duration
        assert [ev["event"] for ev in _tick(am, reg, 16.0)] == ["resolved"]
        assert am.firing() == []

    def test_rate_rule_prime_delta_and_zero_dt(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        am = AlertManager([AlertRule("hot", "ops_total", kind="rate",
                                     op=">", threshold=1.5)])
        # First evaluation primes the previous sample; cannot breach.
        assert _tick(am, reg, 0.0) == []
        c.inc(10)
        new = _tick(am, reg, 5.0)  # rate = 10/5 = 2.0 > 1.5
        assert [ev["event"] for ev in new] == ["pending", "firing"]
        assert new[-1]["value"] == 2.0
        # Re-evaluating at the same clock: dt <= 0 reads as rate 0,
        # which here resolves (clear_duration = 0) — deterministic, not
        # an error.
        new = _tick(am, reg, 5.0)
        assert [ev["event"] for ev in new] == ["resolved"]

    def test_missing_metric_never_transitions(self):
        reg = MetricsRegistry()
        am = AlertManager([AlertRule("ghost", "absent_total")])
        for t in (0.0, 1.0, 2.0):
            assert _tick(am, reg, t) == []
        assert am.events == [] and am.firing() == []


class TestSlo:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloSpec("s", "m", kind="windowed")
        with pytest.raises(ValueError, match="target= and objective="):
            SloSpec("s", "m", kind="quantile")
        with pytest.raises(ValueError, match="denominator= and budget="):
            SloSpec("s", "m", kind="ratio")
        with pytest.raises(ValueError, match="objective"):
            SloSpec("s", "m", kind="quantile", target=1.0, objective=1.0)

    def test_quantile_sample_counts_tail_exactly(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05,) * 8 + (0.5, 5.0):
            h.observe(v)
        slo = SloSpec("lat", "lat", kind="quantile",
                      target=0.1, objective=0.9)
        assert slo.budget == pytest.approx(0.1)
        assert slo.sample(reg) == (2, 10)
        assert SloSpec("w", "lat", kind="quantile", target=1.0,
                       objective=0.9).sample(reg) == (1, 10)

    def test_quantile_slo_rejects_non_histogram(self):
        reg = MetricsRegistry()
        reg.counter("lat").inc()
        slo = SloSpec("s", "lat", kind="quantile", target=0.1,
                      objective=0.9)
        with pytest.raises(ValueError, match="not a histogram"):
            slo.sample(reg)

    def _ratio(self, **kw):
        reg = MetricsRegistry()
        bad = reg.counter("bad_total")
        total = reg.counter("all_total")
        slo = SloSpec("err", "bad_total", kind="ratio",
                      denominator="all_total", budget=0.1, **kw)
        return reg, bad, total, AlertManager(slos=[slo])

    def test_ratio_burn_math_on_known_deltas(self):
        reg, bad, total, am = self._ratio(fast_window=10.0,
                                          slow_window=100.0)
        _tick(am, reg, 0.0)  # (0, 0): no traffic, burn 0
        st = am.slo_status()["err"]
        assert st["fast_burn"] == 0.0 and st["slow_burn"] == 0.0
        bad.inc(5)
        total.inc(50)
        new = _tick(am, reg, 5.0)
        st = am.slo_status()["err"]
        # (5/50)/0.1 = 1.0 on both windows (history shorter than both).
        assert st["fast_burn"] == 1.0 and st["slow_burn"] == 1.0
        assert [ev["event"] for ev in new] == ["pending", "firing"]
        assert new[-1]["slo"] == "err"
        assert new[-1]["bad"] == 5 and new[-1]["total"] == 50
        # Traffic turns clean: the burn drops below 1, the alert resolves.
        total.inc(10)
        new = _tick(am, reg, 6.0)
        st = am.slo_status()["err"]
        assert st["fast_burn"] == pytest.approx((5 / 60) / 0.1)
        assert [ev["event"] for ev in new] == ["resolved"]

    def test_fast_window_anchors_past_old_samples(self):
        reg, bad, total, am = self._ratio(fast_window=10.0,
                                          slow_window=100.0)
        _tick(am, reg, 0.0)  # clean start: (0, 0)
        bad.inc(5)
        total.inc(50)
        _tick(am, reg, 1.0)  # early bad burst: (5, 50)
        total.inc(50)
        _tick(am, reg, 50.0)  # clean since: (5, 100)
        st = am.slo_status()["err"]
        # Fast window [40, 50] anchors on the t=1 sample (the newest at
        # or before the horizon): its delta holds only the clean tail,
        # so the burst has aged out — burn 0.  The slow window still
        # anchors at t=0 and remembers it: (5/100)/0.1 = 0.5.
        assert st["fast_burn"] == 0.0
        assert st["slow_burn"] == pytest.approx(0.5)

    def test_multi_window_gate_suppresses_blips(self):
        reg, bad, total, am = self._ratio(fast_window=5.0,
                                          slow_window=200.0)
        _tick(am, reg, 0.0)
        total.inc(1000)
        _tick(am, reg, 95.0)  # long clean stretch
        bad.inc(10)
        total.inc(10)
        _tick(am, reg, 101.0)  # brief all-bad burst
        st = am.slo_status()["err"]
        assert st["fast_burn"] == pytest.approx(10.0)  # (10/10)/0.1
        assert st["slow_burn"] == pytest.approx((10 / 1010) / 0.1)
        # Fast screams, slow shrugs: no alert.
        assert am.events == [] and am.firing() == []

    def test_history_trims_to_the_slow_window(self):
        reg, bad, total, am = self._ratio(fast_window=5.0,
                                          slow_window=20.0)
        for t in range(100):
            total.inc(1)
            _tick(am, reg, float(t))
        hist = am._slo_state["err"]["history"]
        # Samples inside the window plus one boundary anchor.
        assert len(hist) <= 22
        assert hist[-1][0] == 99.0
        assert hist[0][0] <= 79.0

    def test_slo_status_none_before_first_sample(self):
        am = AlertManager(slos=[SloSpec(
            "err", "bad_total", kind="ratio", denominator="all_total",
            budget=0.1,
        )])
        assert am.slo_status() == {"err": None}
        _tick(am, MetricsRegistry(), 0.0)  # metric absent: still None
        assert am.slo_status() == {"err": None}

    def test_slo_dict_round_trip(self):
        for slo in (
            SloSpec("lat", "serve_batch_seconds", kind="quantile",
                    target=0.01, objective=0.99, fast_window=60.0,
                    slow_window=600.0, burn_threshold=2.0,
                    for_duration=5.0, description="p99 bound"),
            SloSpec("spill", "serve_spilled_total", kind="ratio",
                    denominator="serve_decided_total", budget=0.05),
        ):
            clone = SloSpec.from_dict(slo.to_dict())
            for attr in ("name", "metric", "kind", "target", "objective",
                         "denominator", "budget", "fast_window",
                         "slow_window", "burn_threshold", "for_duration",
                         "clear_duration", "description"):
                assert getattr(clone, attr) == getattr(slo, attr), attr


class TestConfigAndLog:
    def test_json_config_round_trip(self, tmp_path):
        path = tmp_path / "alerts.json"
        doc = {
            "rules": [r.to_dict() for r in default_alert_rules()],
            "slos": [SloSpec(
                "spill", "serve_spilled_total", kind="ratio",
                denominator="serve_decided_total", budget=0.05,
            ).to_dict()],
        }
        path.write_text(json.dumps(doc))
        rules, slos = load_alert_config(path)
        assert [r.name for r in rules] == [
            "capacity-shock", "degraded-mode", "fleet-liveness"
        ]
        assert [s.name for s in slos] == ["spill"]
        am = AlertManager.from_json(path)
        assert [r.name for r in am.rules] == [r.name for r in rules]

    def test_bare_list_config_is_rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            [AlertRule("a", "m").to_dict(), AlertRule("b", "m").to_dict()]
        ))
        rules, slos = load_alert_config(path)
        assert [r.name for r in rules] == ["a", "b"] and slos == []

    def test_jsonl_event_log_mirrors_events(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        am = AlertManager(
            [AlertRule("deep", "depth", op=">", threshold=5.0)],
            log_path=log,
        )
        for t, v in ((0.0, 1.0), (1.0, 10.0), (2.0, 1.0), (3.0, 10.0)):
            g.set(v)
            _tick(am, reg, t)
        lines = [json.loads(x) for x in log.read_text().splitlines()]
        assert lines == am.events
        assert [ev["event"] for ev in lines] == [
            "pending", "firing", "resolved", "pending", "firing"
        ]


# -- service integration: the determinism property ----------------------

def _manager():
    """Rules + one SLO over pinned, mode-invariant metrics only."""
    return AlertManager(
        rules=[
            AlertRule("capacity-shock", "serve_capacity_bytes",
                      kind="rate", op="<", threshold=0.0),
            AlertRule("deep-stream", "serve_decided_total", op=">",
                      threshold=120.0, clear_duration=1e12),
        ],
        slos=[SloSpec(
            "spill-rate", "serve_spilled_total", kind="ratio",
            denominator="serve_decided_total", budget=0.01,
            fast_window=15_000.0, slow_window=60_000.0,
        )],
    )


def _feed_alerts(svc, trace, *, batch=17, crash_at=None):
    """Deterministic stream with one alert tick per batch.

    Draining before each tick makes ``serve_decided_total`` (and every
    other pinned counter) mode-invariant at the evaluation points, so
    the event stream can be compared bit for bit across engines.  The
    capacity halves mid-run and restores later (powers of two,
    float-exact), with evaluations in between so the rate rule sees
    both moves.  Stops *before* the ``crash_at`` batch boundary when
    given (the recovery test resumes from there).
    """
    jobs = trace.jobs
    n = len(jobs)
    down_at, up_at = n // 2, (3 * n) // 4
    for lo in range(0, n, batch):
        if crash_at is not None and lo >= crash_at:
            return
        hi = min(lo + batch, n)
        # Shocks land on the batch boundary (before the submission), so
        # scalar mode (decides at submit) and batch mode (decides at
        # drain) both decide every job against the same capacity.
        if lo <= down_at < hi:
            svc.apply_shock(scale=0.5)
        if lo <= up_at < hi:
            svc.apply_shock(scale=2.0)
        svc.submit_jobs(list(jobs[lo:hi]))
        for k in range(lo, hi):
            if k % 13 == 0:
                svc.complete(jobs[k].job_id)
        svc.drain()
        svc.evaluate_alerts()


class TestEventStreamDeterminism:
    def _run(self, trace, builders, pname, mode, fleet=None):
        am = _manager()
        if fleet is None:
            svc = PlacementService(
                builders[pname](), CAP, 4, mode=mode, alerts=am
            )
        else:
            workers, transport = fleet
            svc = FleetRouter(
                builders[pname](), CAP, 4, mode=mode,
                n_workers=workers, transport=transport, alerts=am,
            )
        svc.open(trace)
        _feed_alerts(svc, trace)
        events = [dict(ev) for ev in am.events]
        status = am.slo_status()
        fired = am.fired()
        if fleet is not None:
            svc.close()
        return events, status, fired

    @pytest.mark.parametrize("pname", ("adaptive", "firstfit"))
    def test_bit_identical_across_modes_and_fleet(
        self, trace, builders, pname
    ):
        ref_events, ref_status, ref_fired = self._run(
            trace, builders, pname, "batch"
        )
        # The stream is not vacuous: the capacity drop fires the rate
        # rule (then resolves on the next tick — a one-shot transient),
        # and the threshold rule latches via its huge clear_duration.
        assert "capacity-shock" in ref_fired
        assert "deep-stream" in ref_fired
        kinds = [ev["event"] for ev in ref_events
                 if ev.get("rule") == "capacity-shock"]
        assert kinds == ["pending", "firing", "resolved"]
        for mode, fleet in (
            ("scalar", None),
            ("batch", (1, "inprocess")),
            ("batch", (3, "inprocess")),
            ("batch", (3, "subprocess")),
            ("scalar", (3, "inprocess")),
        ):
            events, status, fired = self._run(
                trace, builders, pname, mode, fleet
            )
            label = f"{pname}/{mode}/{fleet}"
            assert events == ref_events, label
            assert status == ref_status, label
            assert fired == ref_fired, label

    def test_quiet_stream_emits_zero_events(self, trace, builders):
        """No faults, default rules: not a single false positive."""
        am = AlertManager(rules=default_alert_rules())
        svc = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch", alerts=am
        )
        svc.open(trace)
        jobs = trace.jobs
        for lo in range(0, len(jobs), 17):
            svc.submit_jobs(list(jobs[lo:lo + 17]))
            svc.evaluate_alerts()
        svc.drain()
        svc.evaluate_alerts()
        assert am.events == []
        assert am.fired() == [] and am.firing() == []

    def test_wal_recovery_continues_the_stream(
        self, trace, builders, tmp_path
    ):
        """The recovered service's event stream equals the
        uninterrupted run's — the manager rides the checkpoint and
        replay never evaluates, so nothing resets or double-fires."""
        ref_events, ref_status, _ = self._run(
            trace, builders, "adaptive", "batch"
        )

        n = len(trace.jobs)
        # A batch boundary between the capacity drop (n//2) and the
        # restore (3n//4): the crash lands while capacity-shock has
        # already fired and resolved once.
        crash_at = 17 * ((n // 2 + 17) // 17 + 1)
        assert n // 2 < crash_at < (3 * n) // 4

        wal = str(tmp_path / "a.wal")
        ckpt = str(tmp_path / "a.ckpt")
        svc = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch",
            alerts=_manager(), wal=wal,
        )
        svc.open(trace)
        _feed_alerts(svc, trace, crash_at=crash_at)
        pre_crash = [dict(ev) for ev in svc.alerts.events]
        assert pre_crash, "crash point must land after events exist"
        svc.checkpoint(ckpt)
        svc.wal.close()  # crash

        rec = PlacementService.recover(ckpt, wal)
        assert rec.alerts is not None
        assert [dict(ev) for ev in rec.alerts.events] == pre_crash
        jobs = trace.jobs
        up_at = (3 * n) // 4
        for lo in range(crash_at, n, 17):
            hi = min(lo + 17, n)
            if lo <= up_at < hi:
                rec.apply_shock(scale=2.0)
            rec.submit_jobs(list(jobs[lo:hi]))
            for k in range(lo, hi):
                if k % 13 == 0:
                    rec.complete(jobs[k].job_id)
            rec.drain()
            rec.evaluate_alerts()
        assert [dict(ev) for ev in rec.alerts.events] == ref_events
        assert rec.alerts.slo_status() == ref_status

    def test_manager_survives_snapshot_restore(self, trace, builders):
        svc = PlacementService(
            builders["firstfit"](), CAP, 4, mode="batch", alerts=_manager()
        )
        svc.open(trace)
        _feed_alerts(svc, trace)
        clone = PlacementService.restore(svc.snapshot())
        assert clone.alerts is not None
        assert clone.alerts.events == svc.alerts.events
        assert clone.alerts.seq == svc.alerts.seq
        # The clone's manager is independent state, not a shared ref.
        clone.evaluate_alerts()
        assert clone.alerts.seq == svc.alerts.seq + 1


# -- chaos scenarios fire exactly their expected alerts -----------------

class TestScenarioAlerts:
    @pytest.fixture(scope="class")
    def chaos_trace(self):
        return random_trace(7, n=200)

    @pytest.mark.parametrize(
        "name", ("nofault", "lane_loss", "cat_outage", "worker_kill")
    )
    def test_expected_alert_sets(self, chaos_trace, name):
        rows = run_scenario(
            get_scenario(name), chaos_trace, capacity=CAP,
            batch_jobs=32, alerts=True,
        )
        assert {r.policy for r in rows} == {"adaptive", "baseline"}
        for r in rows:
            want = expected_alerts(
                name, categorizer=(r.policy == "adaptive")
            )
            assert set(r.alerts_fired) == want, (name, r.policy)
            if not want:
                assert r.alert_events == 0, (name, r.policy)

    def test_default_rules_are_fresh_objects(self):
        a, b = default_alert_rules(), default_alert_rules()
        assert [r.name for r in a] == [r.name for r in b]
        assert all(x is not y for x, y in zip(a, b))


# -- snapshot schema compatibility (pre-alerting checkpoints) -----------

def _downgrade(snap, schema, strip):
    from dataclasses import replace

    payload = {k: v for k, v in snap.payload.items() if k not in strip}
    payload["__schema__"] = schema
    return replace(snap, payload=payload)


class TestSnapshotCompat:
    _PRE_ALERTS = ("alerts", "tracer", "_clock")
    _PRE_METRICS = _PRE_ALERTS + (
        "registry", "_m_cat", "_m_request", "_m_batch", "_m_chunk_jobs",
    )

    def _service(self, trace, builders):
        svc = PlacementService(builders["firstfit"](), CAP, 4, mode="batch")
        svc.open(trace)
        svc.submit_jobs(list(trace.jobs[:60]))
        svc.drain()
        return svc

    @pytest.mark.parametrize("schema,strip", [
        (1, _PRE_METRICS), (2, _PRE_ALERTS),
    ])
    def test_older_schema_restores_with_defaults(
        self, trace, builders, schema, strip
    ):
        svc = self._service(trace, builders)
        old = _downgrade(svc.snapshot(), schema, strip)
        rec = PlacementService.restore(old)
        assert rec.alerts is None and rec.tracer is None
        # The restored service keeps serving: decisions continue and
        # the (possibly fresh) metrics surface works.
        rec.submit_jobs(list(trace.jobs[60:80]))
        rec.drain()
        assert rec.n_decided == 80
        # A schema-1 payload gets a *fresh* registry; the pinned
        # counters re-sync from the authoritative stats either way.
        assert rec.metrics()["serve_decided_total"] == 80
        assert rec.evaluate_alerts() == []

    def test_unknown_schema_still_refuses(self, trace, builders):
        from repro.serve import SnapshotMismatch

        svc = self._service(trace, builders)
        bad = _downgrade(svc.snapshot(), 99, ())
        with pytest.raises(SnapshotMismatch, match="schema"):
            PlacementService.restore(bad)
