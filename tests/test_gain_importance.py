"""Split-count feature importance."""

import numpy as np
import pytest

from repro.ml import (
    GBTClassifier,
    GBTRegressor,
    model_split_importance,
    split_count_importance,
)


class TestModelSplitImportance:
    def test_informative_feature_dominates(self, rng):
        X = rng.normal(size=(2000, 5))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        clf = GBTClassifier(n_rounds=5, max_depth=3).fit(X, y)
        imp = model_split_importance(clf)
        assert imp.argmax() == 2
        assert imp[2] > 0.5

    def test_normalized_sums_to_one(self, rng):
        X = rng.normal(size=(500, 4))
        y = X[:, 0] + X[:, 1]
        reg = GBTRegressor(n_rounds=5, max_depth=3).fit(X, y)
        imp = model_split_importance(reg)
        assert imp.sum() == pytest.approx(1.0)

    def test_unnormalized_counts(self, rng):
        X = rng.normal(size=(500, 4))
        y = X[:, 0]
        reg = GBTRegressor(n_rounds=3, max_depth=2).fit(X, y)
        counts = model_split_importance(reg, normalize=False)
        assert (counts >= 0).all()
        assert counts.sum() > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            model_split_importance(GBTClassifier())

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            model_split_importance("not a model")

    def test_per_tree_counts(self, rng):
        X = rng.normal(size=(800, 3))
        y = X[:, 1]
        reg = GBTRegressor(n_rounds=1, max_depth=2).fit(X, y)
        counts = split_count_importance(reg.trees_[0], 3)
        assert counts.shape == (3,)
        assert counts[1] >= 1
