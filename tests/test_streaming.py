"""Streaming trace ingestion: block protocol, adapters, bit-identity.

The load-bearing guarantee of ``repro.workloads.streaming`` is that a
simulation driven from a :class:`TraceSource` is **bit-identical** to
the in-memory run of the same jobs — across both engines and any shard
count — while never materializing per-job objects.  These tests pin
that contract, plus the block-validation and error paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import MethodSuite
from repro.config import ModelParams
from repro.core import AdaptiveCategoryPolicy, hash_categories, prepare_cluster
from repro.baselines import CategoryAdmissionPolicy, FirstFitPolicy
from repro.cli import main as cli_main
from repro.storage import run_placement, simulate, simulate_sharded
from repro.workloads import (
    CsvTraceSource,
    InMemoryTraceSource,
    NpzTraceSource,
    StreamedTrace,
    Trace,
    TraceBlock,
    load_csv_trace,
    materialize_trace,
    open_trace_source,
    save_csv_trace,
    save_trace,
    stream_csv_trace,
)

from helpers import make_job

N_CATEGORIES = 8


def assert_results_identical(a, b):
    """SimResult equality down to the bit: scalars with ==, arrays exact."""
    assert a.n_jobs == b.n_jobs
    assert a.n_ssd_requested == b.n_ssd_requested
    assert a.n_spilled == b.n_spilled
    assert a.n_shards == b.n_shards
    assert a.baseline_tco == b.baseline_tco
    assert a.realized_tco == b.realized_tco
    assert a.baseline_tcio == b.baseline_tcio
    assert a.realized_hdd_tcio == b.realized_hdd_tcio
    assert a.peak_ssd_used == b.peak_ssd_used
    assert np.array_equal(a.ssd_fraction, b.ssd_fraction)
    if a.lane_capacities is None:
        assert b.lane_capacities is None
    else:
        assert np.array_equal(a.lane_capacities, b.lane_capacities)


def _block(n=4, t0=0.0, **overrides):
    cols = dict(
        arrivals=t0 + np.arange(n, dtype=float),
        durations=np.full(n, 10.0),
        sizes=np.full(n, 1e9),
        read_bytes=np.full(n, 2e9),
        write_bytes=np.full(n, 1e9),
        read_ops=np.full(n, 100.0),
    )
    cols.update(overrides)
    return TraceBlock(**cols)


class TestTraceBlock:
    def test_length_and_columns(self):
        b = _block(5)
        assert len(b) == 5
        assert b.arrivals.dtype == float

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValueError, match="sizes"):
            _block(4, sizes=np.ones(3))

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            _block(4, durations=np.ones((2, 2)))

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            _block(3, arrivals=np.array([0.0, 2.0, 1.0]))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _block(3, sizes=np.array([1.0, -1.0, 1.0]))

    def test_identity_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="pipelines"):
            _block(3, pipelines=("a", "b"))


class TestStreamedTrace:
    def test_in_memory_round_trip_exact(self, small_trace):
        st = StreamedTrace.from_source(InMemoryTraceSource(small_trace, block_size=37))
        assert len(st) == len(small_trace)
        for col in ("arrivals", "durations", "sizes", "read_bytes",
                    "write_bytes", "read_ops"):
            assert np.array_equal(getattr(st, col), getattr(small_trace, col))
        assert st.pipelines == small_trace.pipelines
        assert st.users == small_trace.users
        assert st.peak_ssd_usage() == small_trace.peak_ssd_usage()
        assert np.array_equal(st.costs().c_hdd, small_trace.costs().c_hdd)

    def test_ragged_final_block(self, small_trace):
        n = len(small_trace)
        block_size = (n // 3) + 1  # does not divide n
        assert n % block_size != 0
        source = InMemoryTraceSource(small_trace, block_size=block_size)
        sizes = [len(b) for b in source]
        assert sizes[-1] == n % block_size
        st = StreamedTrace.from_source(source)
        assert np.array_equal(st.arrivals, small_trace.arrivals)

    def test_empty_source(self):
        st = StreamedTrace.from_source(iter([]))
        assert len(st) == 0
        assert st.peak_ssd_usage() == 0.0
        res = simulate(st, FirstFitPolicy(), 1e9)
        assert res.n_jobs == 0
        assert res.n_ssd_requested == 0

    def test_zero_length_blocks_skipped(self):
        st = StreamedTrace.from_source(iter([_block(0), _block(3), _block(0)]))
        assert len(st) == 3

    def test_out_of_order_blocks_rejected(self):
        with pytest.raises(ValueError, match="arrival-ordered"):
            StreamedTrace.from_source(iter([_block(3, t0=100.0), _block(3, t0=0.0)]))

    def test_default_identity_columns(self):
        st = StreamedTrace.from_source(iter([_block(3)]))
        assert st.pipelines == ["pipeline0"] * 3
        assert st.users == ["user0"] * 3
        assert np.array_equal(st.job_ids, np.arange(3))

    def test_getitem_synthesizes_job(self, small_trace):
        st = materialize_trace(InMemoryTraceSource(small_trace, block_size=16))
        job = st[5]
        ref = small_trace[5]
        assert job.pipeline == ref.pipeline
        assert job.arrival == ref.arrival
        assert job.size == ref.size


class TestOpenTraceSource:
    def test_dispatch(self, small_trace, tmp_path):
        save_csv_trace(small_trace, tmp_path / "t.csv")
        save_trace(small_trace, tmp_path / "t")
        assert isinstance(open_trace_source(small_trace), InMemoryTraceSource)
        assert isinstance(open_trace_source(str(tmp_path / "t.csv")), CsvTraceSource)
        assert isinstance(open_trace_source(str(tmp_path / "t.npz")), NpzTraceSource)
        # save_trace prefix convention (no suffix) resolves to the npz.
        assert isinstance(open_trace_source(str(tmp_path / "t")), NpzTraceSource)
        src = stream_csv_trace(tmp_path / "t.csv")
        assert open_trace_source(src) is src

    def test_unknown_path_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            open_trace_source(str(tmp_path / "nothing.xyz"))

    def test_materialize_passes_traces_through(self, small_trace):
        assert materialize_trace(small_trace) is small_trace
        st = StreamedTrace.from_source(iter([_block(3)]))
        assert materialize_trace(st) is st


class TestCsvStreaming:
    def test_stream_matches_load(self, small_trace, tmp_path):
        path = tmp_path / "t.csv"
        save_csv_trace(small_trace, path)
        loaded = load_csv_trace(path)
        streamed = materialize_trace(stream_csv_trace(path, block_size=61))
        assert np.array_equal(streamed.arrivals, loaded.arrivals)
        assert np.array_equal(streamed.sizes, loaded.sizes)
        assert streamed.pipelines == loaded.pipelines
        assert np.array_equal(
            streamed.job_ids, np.array([j.job_id for j in loaded])
        )

    def test_unsorted_csv_streams_rejected_but_loads(self, tmp_path):
        path = tmp_path / "u.csv"
        path.write_text(
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
            "0,100.0,60.0,1e9,2e9,1e9,5000\n"
            "1,50.0,60.0,1e9,2e9,1e9,5000\n"
        )
        # The materializing loader re-sorts; the streaming reader cannot.
        assert len(load_csv_trace(path)) == 2
        with pytest.raises(ValueError, match="row 1.*arrival-ordered"):
            list(stream_csv_trace(path).blocks())

    def test_malformed_numeric_reports_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
            "0,0.0,60.0,1e9,2e9,1e9,5000\n"
            "1,1.0,oops,1e9,2e9,1e9,5000\n"
        )
        with pytest.raises(ValueError, match="bad numeric value in row 1"):
            list(stream_csv_trace(path).blocks())

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("job_id,arrival\n0,0\n")
        with pytest.raises(ValueError, match="missing required columns"):
            list(stream_csv_trace(path).blocks())

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            list(stream_csv_trace(path).blocks())

    def test_header_only_streams_zero_jobs(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text(
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
        )
        st = materialize_trace(stream_csv_trace(path))
        assert len(st) == 0


class TestNpzStreaming:
    def test_npz_matches_trace(self, small_trace, tmp_path):
        save_trace(small_trace, tmp_path / "t")
        st = materialize_trace(NpzTraceSource(tmp_path / "t", block_size=43))
        assert np.array_equal(st.arrivals, small_trace.arrivals)
        assert st.pipelines == small_trace.pipelines
        assert st.users == small_trace.users

    def test_legacy_npz_falls_back_to_sidecar(self, small_trace, tmp_path):
        save_trace(small_trace, tmp_path / "t")
        # Strip the embedded identity arrays, as traces saved before
        # they existed would be.
        with np.load(tmp_path / "t.npz") as arrays:
            legacy = {
                k: arrays[k]
                for k in arrays.files
                if k not in ("pipelines", "users", "job_ids")
            }
        np.savez_compressed(tmp_path / "t.npz", **legacy)
        st = materialize_trace(NpzTraceSource(tmp_path / "t"))
        assert st.pipelines == small_trace.pipelines


@pytest.fixture(scope="module")
def sim_setup(tmp_path_factory):
    """A trace with capacity pressure, serialized to CSV and npz."""
    tmp = tmp_path_factory.mktemp("streams")
    jobs = [
        make_job(
            job_id=i,
            arrival=float(i * 7 % 5000),
            duration=200.0 + (i % 13) * 40.0,
            size=(0.5 + (i % 7)) * 1e9,
            pipeline=f"p{i % 23}",
            user=f"u{i % 5}",
        )
        for i in range(900)
    ]
    trace = Trace(jobs, name="pressure")
    save_csv_trace(trace, tmp / "pressure.csv")
    save_trace(trace, tmp / "pressure")
    return trace, tmp


def _sources(trace, tmp, block_size):
    return {
        "memory": InMemoryTraceSource(trace, block_size=block_size),
        "csv": stream_csv_trace(tmp / "pressure.csv", block_size=block_size),
        "npz": NpzTraceSource(tmp / "pressure", block_size=block_size),
    }


class TestBitIdenticalSimulation:
    """The acceptance bar: streamed == in-memory, both engines, any lanes."""

    @pytest.mark.parametrize("engine", ["chunked", "legacy"])
    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("kind", ["memory", "csv", "npz"])
    def test_adaptive_equivalence(self, sim_setup, engine, n_shards, kind):
        trace, tmp = sim_setup
        cats = hash_categories(trace, N_CATEGORIES)
        capacity = 0.3 * trace.peak_ssd_usage()

        def run(t):
            policy = AdaptiveCategoryPolicy(cats, N_CATEGORIES)
            if n_shards > 1:
                return simulate_sharded(t, policy, capacity, n_shards, engine=engine)
            return simulate(t, policy, capacity, engine=engine)

        reference = run(trace)
        source = _sources(trace, tmp, block_size=128)[kind]
        assert_results_identical(reference, run(source))

    def test_streamed_trace_spills_under_pressure(self, sim_setup):
        # Guard against a vacuous equivalence: the fixture must actually
        # exercise spill/partial-fit paths.
        trace, _ = sim_setup
        cats = hash_categories(trace, N_CATEGORIES)
        res = simulate(
            trace, AdaptiveCategoryPolicy(cats, N_CATEGORIES),
            0.3 * trace.peak_ssd_usage(),
        )
        assert res.n_spilled > 0

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_firstfit_fit_check_equivalence(self, sim_setup, n_shards):
        trace, tmp = sim_setup
        capacity = 0.2 * trace.peak_ssd_usage()

        def run(t):
            if n_shards > 1:
                return simulate_sharded(t, FirstFitPolicy(), capacity, n_shards)
            return simulate(t, FirstFitPolicy(), capacity)

        source = stream_csv_trace(tmp / "pressure.csv", block_size=200)
        assert_results_identical(run(trace), run(source))

    def test_heuristic_policy_on_streamed_trace(self, sim_setup):
        # CategoryAdmissionPolicy reads per-job pipelines through
        # ``trace[i]`` — covers the synthesized-job path end to end.
        trace, tmp = sim_setup
        capacity = 0.2 * trace.peak_ssd_usage()

        def run(t):
            return simulate(t, CategoryAdmissionPolicy(trace), capacity)

        source = NpzTraceSource(tmp / "pressure", block_size=256)
        assert_results_identical(run(trace), run(source))

    def test_run_placement_accepts_path(self, sim_setup):
        trace, tmp = sim_setup
        capacity = 0.25 * trace.peak_ssd_usage()
        cats = hash_categories(trace, N_CATEGORIES)
        ref = run_placement(
            trace, AdaptiveCategoryPolicy(cats, N_CATEGORIES), capacity
        )
        res = run_placement(
            str(tmp / "pressure.csv"),
            AdaptiveCategoryPolicy(cats, N_CATEGORIES),
            capacity,
        )
        assert_results_identical(ref, res)

    def test_ragged_blocks_do_not_change_results(self, sim_setup):
        trace, tmp = sim_setup
        cats = hash_categories(trace, N_CATEGORIES)
        capacity = 0.3 * trace.peak_ssd_usage()
        ref = simulate(trace, AdaptiveCategoryPolicy(cats, N_CATEGORIES), capacity)
        for block_size in (1, 7, 899, 10_000):
            res = simulate(
                stream_csv_trace(tmp / "pressure.csv", block_size=block_size),
                AdaptiveCategoryPolicy(cats, N_CATEGORIES),
                capacity,
            )
            assert_results_identical(ref, res)


@pytest.fixture(scope="module")
def trained_suite(two_week_trace):
    cluster = prepare_cluster(two_week_trace)
    return MethodSuite(cluster, model_params=ModelParams(n_rounds=4))


class TestPipelinePlumbing:
    def test_method_suite_trace_source(self, trained_suite, tmp_path):
        test = trained_suite.cluster.test
        save_csv_trace(test, tmp_path / "week2.csv")
        ref = trained_suite.run("Adaptive Ranking", 0.1)
        res = trained_suite.run(
            "Adaptive Ranking", 0.1,
            trace_source=stream_csv_trace(tmp_path / "week2.csv", block_size=300),
        )
        assert_results_identical(ref, res)

    def test_method_suite_source_length_mismatch(self, trained_suite, tmp_path):
        short = Trace([make_job(job_id=0)], name="short")
        save_csv_trace(short, tmp_path / "short.csv")
        with pytest.raises(ValueError, match="same jobs in the same order"):
            trained_suite.run(
                "FirstFit", 0.1, trace_source=str(tmp_path / "short.csv")
            )

    def test_deploy_from_source(self, trained_suite, tmp_path):
        cluster = trained_suite.cluster
        save_csv_trace(cluster.test, tmp_path / "week2.csv")
        pipe = trained_suite.pipeline
        ref = pipe.deploy(
            cluster.test, cluster.features_test, 0.1, cluster.peak_ssd_usage
        )
        res = pipe.deploy(
            stream_csv_trace(tmp_path / "week2.csv"),
            cluster.features_test,
            0.1,
            cluster.peak_ssd_usage,
        )
        assert_results_identical(ref, res)


class TestCliReplay:
    def test_replay_csv(self, sim_setup, capsys):
        trace, tmp = sim_setup
        rc = cli_main(
            ["replay", "--trace", str(tmp / "pressure.csv"),
             "--quota", "0.2", "--shards", "2", "--block-size", "300"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"streamed {len(trace)} jobs" in out
        assert "TCO savings" in out

    def test_replay_npz_prefix(self, sim_setup, capsys):
        _, tmp = sim_setup
        rc = cli_main(["replay", "--trace", str(tmp / "pressure")])
        assert rc == 0
        assert "NpzTraceSource" in capsys.readouterr().out
