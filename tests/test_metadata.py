"""Metadata synthesis, tokenization and stable hashing."""

import numpy as np

from repro.workloads import METADATA_FIELDS, MetadataSynthesizer, stable_hash, tokenize


class TestTokenize:
    def test_splits_on_non_alphanumeric(self):
        assert tokenize("//storage/logs/buildmanager:importer") == [
            "storage",
            "logs",
            "buildmanager",
            "importer",
        ]

    def test_keeps_digits(self):
        assert tokenize("s3-open-shuffle10") == ["s3", "open", "shuffle10"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_separators(self):
        assert tokenize("//--..::") == []


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("GroupByKey") == stable_hash("GroupByKey")

    def test_seed_changes_hash(self):
        assert stable_hash("GroupByKey", seed=0) != stable_hash("GroupByKey", seed=1)

    def test_range_32bit(self):
        h = stable_hash("anything")
        assert 0 <= h <= 0xFFFFFFFF


class TestMetadataSynthesizer:
    def _make(self, seed=0):
        rng = np.random.default_rng(seed)
        return MetadataSynthesizer("C0", "user0", 7, "dbquery", rng)

    def test_produces_all_fields(self):
        meta = self._make().for_step(0)
        assert set(meta) == set(METADATA_FIELDS)

    def test_pipeline_names_stable_across_steps(self):
        synth = self._make()
        m0, m1 = synth.for_step(0), synth.for_step(1)
        assert m0["pipeline_name"] == m1["pipeline_name"]
        assert m0["build_target_name"] == m1["build_target_name"]
        assert m0["step_name"] != m1["step_name"]

    def test_pipeline_index_embedded(self):
        meta = self._make().for_step(0)
        assert "7" in meta["pipeline_name"]

    def test_archetype_tokens_present(self):
        meta = self._make().for_step(0)
        assert "dbquery" in tokenize(meta["build_target_name"])
