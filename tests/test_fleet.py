"""Fleet-level aggregation of per-cluster results."""

import numpy as np
import pytest

from repro.analysis.fleet import aggregate_fleet, compare_methods_fleetwide
from repro.storage import SimResult


def result(name="m", baseline=100.0, realized=90.0, btcio=50.0, rtcio=40.0):
    return SimResult(
        policy_name=name,
        capacity=1.0,
        n_jobs=10,
        baseline_tco=baseline,
        realized_tco=realized,
        baseline_tcio=btcio,
        realized_hdd_tcio=rtcio,
        n_ssd_requested=5,
        n_spilled=0,
        peak_ssd_used=0.0,
        ssd_fraction=np.zeros(10),
    )


class TestAggregateFleet:
    def test_weighted_by_baseline(self):
        # Cluster A: 10% savings on 100; cluster B: 50% savings on 900.
        fleet = aggregate_fleet(
            {"A": result(baseline=100, realized=90),
             "B": result(baseline=900, realized=450)}
        )
        assert fleet.tco_savings_pct == pytest.approx(100 * (1000 - 540) / 1000)
        assert fleet.n_clusters == 2

    def test_mixed_methods_rejected(self):
        with pytest.raises(ValueError):
            aggregate_fleet({"A": result(name="x"), "B": result(name="y")})

    def test_explicit_method_overrides(self):
        fleet = aggregate_fleet(
            {"A": result(name="x"), "B": result(name="y")}, method="combined"
        )
        assert fleet.method == "combined"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_fleet({})

    def test_zero_baseline_safe(self):
        fleet = aggregate_fleet({"A": result(baseline=0.0, realized=0.0, btcio=0.0, rtcio=0.0)})
        assert fleet.tco_savings_pct == 0.0
        assert fleet.tcio_savings_pct == 0.0


class TestCompareMethodsFleetwide:
    def test_per_method_summaries(self):
        per_cluster = {
            "C0": {"ours": result("ours", 100, 80), "ff": result("ff", 100, 95)},
            "C1": {"ours": result("ours", 200, 180), "ff": result("ff", 200, 198)},
        }
        out = compare_methods_fleetwide(per_cluster)
        assert set(out) == {"ours", "ff"}
        assert out["ours"].tco_savings_pct > out["ff"].tco_savings_pct
        assert out["ours"].n_clusters == 2

    def test_method_missing_in_one_cluster(self):
        per_cluster = {
            "C0": {"ours": result("ours")},
            "C1": {"ff": result("ff")},
        }
        with pytest.raises(ValueError):
            compare_methods_fleetwide(per_cluster)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compare_methods_fleetwide({})
