"""Device endurance and fleet-sizing accounting."""

import pytest

from repro.storage.devices import HddFleet, SsdFleet, SsdSpec, wearout_rate_from_spec
from repro.units import TIB


class TestSsdSpec:
    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            SsdSpec(capacity=0)
        with pytest.raises(ValueError):
            SsdSpec(tbw=-1)

    def test_wearout_rate_definition(self):
        spec = SsdSpec(capacity=1 * TIB, tbw=600 * TIB, unit_cost=120.0)
        assert wearout_rate_from_spec(spec) == pytest.approx(120.0 / (600 * TIB))


class TestSsdFleet:
    def test_drive_count_rounds_up(self):
        fleet = SsdFleet(spec=SsdSpec(capacity=2 * TIB), provisioned_bytes=3 * TIB)
        assert fleet.n_drives == 2

    def test_zero_provisioning(self):
        fleet = SsdFleet(provisioned_bytes=0.0)
        assert fleet.n_drives == 0
        assert fleet.endurance_consumed_fraction == 0.0

    def test_endurance_accumulates(self):
        spec = SsdSpec(capacity=2 * TIB, tbw=100 * TIB)
        fleet = SsdFleet(spec=spec, provisioned_bytes=2 * TIB)
        fleet.record_writes(50 * TIB)
        assert fleet.endurance_consumed_fraction == pytest.approx(0.5)
        fleet.record_writes(50 * TIB)
        assert fleet.endurance_consumed_fraction == pytest.approx(1.0)

    def test_negative_writes_rejected(self):
        with pytest.raises(ValueError):
            SsdFleet().record_writes(-1.0)

    def test_wearout_cost_consistent_with_rate(self):
        spec = SsdSpec(capacity=2 * TIB, tbw=1000 * TIB, unit_cost=100.0)
        fleet = SsdFleet(spec=spec, provisioned_bytes=2 * TIB)
        fleet.record_writes(10 * TIB)
        assert fleet.wearout_cost == pytest.approx(
            wearout_rate_from_spec(spec) * 10 * TIB
        )

    def test_replacement_projection(self):
        spec = SsdSpec(tbw=100 * TIB)
        fleet = SsdFleet(spec=spec)
        assert fleet.drive_replacements_over(250 * TIB) == pytest.approx(2.5)

    def test_replacement_projection_accounts_for_consumed_endurance(self):
        """A mid-life fleet must report more replacements than a fresh one
        over the same horizon: its drives fail after only the remaining
        endurance (regression: wear was previously ignored entirely)."""
        spec = SsdSpec(capacity=2 * TIB, tbw=100 * TIB)
        fresh = SsdFleet(spec=spec, provisioned_bytes=2 * TIB)
        mid = SsdFleet(spec=spec, provisioned_bytes=2 * TIB, bytes_written=50 * TIB)
        assert fresh.drive_replacements_over(250 * TIB) == pytest.approx(2.5)
        assert mid.drive_replacements_over(250 * TIB) == pytest.approx(3.0)
        assert mid.drive_replacements_over(250 * TIB) > fresh.drive_replacements_over(
            250 * TIB
        )

    def test_replacement_projection_wear_levels_across_drives(self):
        # 2 drives, 100 TiB written -> 50 TiB wear each: the horizon
        # starts one half-lifetime in on both lineages.
        spec = SsdSpec(capacity=2 * TIB, tbw=100 * TIB)
        fleet = SsdFleet(spec=spec, provisioned_bytes=4 * TIB, bytes_written=100 * TIB)
        assert fleet.drive_replacements_over(250 * TIB) == pytest.approx(3.5)

    def test_replacement_projection_skips_already_replaced_wear(self):
        # 150 TiB on a 100-TiB-TBW drive: one replacement already
        # happened before the horizon; only the 50 TiB on the current
        # drive counts against it.
        spec = SsdSpec(capacity=2 * TIB, tbw=100 * TIB)
        fleet = SsdFleet(spec=spec, provisioned_bytes=2 * TIB, bytes_written=150 * TIB)
        assert fleet.drive_replacements_over(250 * TIB) == pytest.approx(3.0)

    def test_replacement_projection_zero_horizon_reports_sunk_wear(self):
        # The budget framing: with no further writes, the projection is
        # exactly the worn fraction of the in-service drives (and 0 for
        # a fresh fleet).
        spec = SsdSpec(capacity=2 * TIB, tbw=100 * TIB)
        fresh = SsdFleet(spec=spec, provisioned_bytes=2 * TIB)
        mid = SsdFleet(spec=spec, provisioned_bytes=2 * TIB, bytes_written=50 * TIB)
        assert fresh.drive_replacements_over(0.0) == 0.0
        assert mid.drive_replacements_over(0.0) == pytest.approx(0.5)

    def test_replacement_projection_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            SsdFleet().drive_replacements_over(-1.0)


class TestHddFleet:
    def test_io_bound_sizing(self):
        fleet = HddFleet(drive_capacity=16 * TIB)
        # TCIO 3.2 needs 4 drives even with tiny footprint.
        assert fleet.drives_for(3.2, 1 * TIB) == 4

    def test_capacity_bound_sizing(self):
        fleet = HddFleet(drive_capacity=16 * TIB)
        # 100 TiB of cold data needs 7 drives even with no I/O.
        assert fleet.drives_for(0.0, 100 * TIB) == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HddFleet().drives_for(-1.0, 0.0)
