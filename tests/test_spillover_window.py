"""SpilloverWindow ring buffer vs the scalar ObservedJob reference."""

import numpy as np
import pytest

from repro.core import ObservedJob, SpilloverWindow, spillover_percentage


def random_history(rng, n):
    jobs = []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.0, 30.0))
        duration = float(rng.uniform(1.0, 400.0))
        scheduled = bool(rng.random() < 0.7)
        spilled = scheduled and rng.random() < 0.4
        spill_time = float(rng.uniform(t, t + duration * 0.5)) if spilled else None
        jobs.append(
            ObservedJob(
                arrival=t,
                end=t + duration,
                tcio_rate=float(rng.uniform(0.0, 5.0)),
                scheduled_ssd=scheduled,
                spill_time=spill_time,
                spilled_fraction=float(rng.uniform(0.1, 1.0)) if spilled else 0.0,
            )
        )
    return jobs


def fill(window, jobs):
    for j in jobs:
        window.append(
            arrival=j.arrival,
            end=j.end,
            tcio_rate=j.tcio_rate,
            scheduled_ssd=j.scheduled_ssd,
            spill_time=j.spill_time,
            spilled_fraction=j.spilled_fraction,
        )


class TestPercentage:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        jobs = random_history(rng, 300)
        window = SpilloverWindow(capacity=16)  # force several growths
        fill(window, jobs)
        t = jobs[-1].arrival + 50.0
        assert window.percentage(t) == pytest.approx(
            spillover_percentage(jobs, t), abs=1e-12
        )

    def test_empty_window_is_zero(self):
        assert SpilloverWindow().percentage(100.0) == 0.0

    def test_all_hdd_window_is_zero(self):
        window = SpilloverWindow()
        window.append(0.0, 10.0, 2.0, False, None, 0.0)
        assert window.percentage(5.0) == 0.0

    def test_bounded_unit_interval(self):
        window = SpilloverWindow()
        window.append(0.0, 100.0, 3.0, True, 0.0, 1.0)
        window.append(10.0, 60.0, 1.0, True, 10.0, 1.0)
        p = window.percentage(50.0)
        assert 0.0 <= p <= 1.0
        assert p == pytest.approx(1.0)


class TestEviction:
    def test_evict_matches_list_filter(self):
        rng = np.random.default_rng(5)
        jobs = random_history(rng, 200)
        window = SpilloverWindow(capacity=16)
        fill(window, jobs)
        cutoff = jobs[120].arrival
        window.evict_older(cutoff)
        kept = [j for j in jobs if j.arrival > cutoff]
        assert len(window) == len(kept)
        t = jobs[-1].arrival + 10.0
        assert window.percentage(t) == pytest.approx(
            spillover_percentage(kept, t), abs=1e-12
        )

    def test_append_after_eviction_recycles_space(self):
        window = SpilloverWindow(capacity=16)
        for i in range(1000):
            window.append(float(i), float(i) + 5.0, 1.0, True, None, 0.0)
            if i % 10 == 0:
                window.evict_older(float(i) - 20.0)
        assert len(window) <= 31  # 21-entry window + up to 10 appends between evictions
        # Backing store stayed small: eviction slack was reused.
        assert window._arrival.shape[0] <= 64

    def test_to_jobs_roundtrip(self):
        rng = np.random.default_rng(9)
        jobs = random_history(rng, 40)
        window = SpilloverWindow()
        fill(window, jobs)
        assert window.to_jobs() == jobs


class TestExtend:
    def test_bulk_matches_scalar_appends(self):
        rng = np.random.default_rng(3)
        jobs = random_history(rng, 120)
        a = SpilloverWindow(capacity=16)
        fill(a, jobs)
        b = SpilloverWindow(capacity=16)
        b.extend(
            arrival=np.array([j.arrival for j in jobs]),
            end=np.array([j.end for j in jobs]),
            tcio_rate=np.array([j.tcio_rate for j in jobs]),
            scheduled_ssd=np.array([j.scheduled_ssd for j in jobs]),
            spill_time=np.array(
                [np.nan if j.spill_time is None else j.spill_time for j in jobs]
            ),
            spilled_fraction=np.array([j.spilled_fraction for j in jobs]),
        )
        t = jobs[-1].end + 1.0
        assert len(a) == len(b)
        assert a.percentage(t) == pytest.approx(b.percentage(t), abs=1e-15)
