"""Online model-driven serving: incremental features, prediction, policy.

The offline BYOM pipeline extracts a whole week's features and predicts
every category before the replay starts; the online path must do both
on the admission path, incrementally — and land on the same numbers:

1. :class:`OnlineFeatureExtractor` rows are bit-identical to
   :func:`extract_features` over the same jobs, at any push
   granularity, including the ``warm_start`` seeding that makes a
   served week see training-week history.
2. :class:`OnlineCategorizer` predictions are bit-identical to the
   offline ``model.predict`` over the same features.
3. A :class:`PlacementService` with the online policy + categorizer,
   fed request-at-a-time, is bit-identical to the offline legacy-engine
   replay with offline-predicted categories (micro-batch mode matches
   the chunked engine's numbers to float-roundoff — chunk boundaries at
   the submission horizon are the one legitimate difference).
"""

import numpy as np
import pytest

from repro.core import AdaptiveCategoryPolicy, ByomPipeline, prepare_cluster
from repro.serve import OnlineAdaptivePolicy, OnlineCategorizer, PlacementService
from repro.storage import simulate
from repro.units import DAY
from repro.workloads import ClusterSpec, extract_features, generate_cluster_trace
from repro.workloads.features import OnlineFeatureExtractor


@pytest.fixture(scope="module")
def cluster():
    spec = ClusterSpec(
        name="serve",
        archetype_weights={"dbquery": 2, "logproc": 1, "streaming": 1},
        n_pipelines=8,
        n_users=4,
        seed=7,
    )
    return prepare_cluster(generate_cluster_trace(spec, duration=14 * DAY))


@pytest.fixture(scope="module")
def pipe(cluster):
    return ByomPipeline().train(cluster.train, cluster.features_train)


class TestOnlineFeatures:
    def test_rows_match_offline_per_job(self, cluster):
        offline = extract_features(cluster.test)
        ex = OnlineFeatureExtractor()
        rows = np.vstack([ex.push([j]) for j in cluster.test])
        assert np.array_equal(rows, offline.X)

    def test_rows_match_offline_batched(self, cluster):
        """Push granularity must not matter (1, a few, the rest)."""
        offline = extract_features(cluster.test)
        ex = OnlineFeatureExtractor()
        jobs = list(cluster.test)
        rows = np.vstack(
            [ex.push(jobs[:1]), ex.push(jobs[1:40]), ex.push(jobs[40:])]
        )
        assert np.array_equal(rows, offline.X)

    def test_warm_start_matches_combined_extraction(self, cluster):
        """A served test week with warm-started history must see exactly
        the history rows a combined-trace extraction gives test jobs."""
        full = extract_features(cluster.full)
        split = cluster.test.arrivals[0]
        test_idx = np.flatnonzero(cluster.full.arrivals >= split)
        ex = OnlineFeatureExtractor().warm_start(cluster.train)
        rows = ex.push(list(cluster.test))
        assert np.array_equal(rows, full.X[test_idx])

    def test_jobs_without_metadata_zero_group_bc(self, cluster):
        """Streamed/synthesized jobs (no metadata) produce zero hashed
        and resource columns — never an error."""
        from repro.workloads import InMemoryTraceSource, StreamedTrace

        streamed = StreamedTrace.from_source(
            InMemoryTraceSource(cluster.test, block_size=64)
        )
        ex = OnlineFeatureExtractor()
        rows = ex.push([streamed[0]])
        offline = extract_features(cluster.test)
        meta_cols = [i for i, g in enumerate(offline.groups) if g in ("B", "C")]
        assert (rows[0, meta_cols] == 0.0).all()
        # Groups A and T survive (numeric columns are intact).
        t_cols = [i for i, g in enumerate(offline.groups) if g == "T"]
        assert np.array_equal(rows[0, t_cols], offline.X[0, t_cols])


class TestOnlineCategorizer:
    def test_matches_offline_predict(self, cluster, pipe):
        feats = extract_features(cluster.test)
        offline = pipe.model.predict(feats)
        cz = OnlineCategorizer(pipe.model)
        jobs = list(cluster.test)
        parts = [cz([j]) for j in jobs[:25]]  # request-at-a-time path
        parts.append(cz(jobs[25:]))  # micro-batch path
        assert np.array_equal(np.concatenate(parts), offline)

    def test_rejects_unfitted_model(self):
        from repro.ml import GBTClassifier

        with pytest.raises(ValueError, match="fitted"):
            OnlineCategorizer(GBTClassifier())

    def test_single_class_model(self, cluster):
        from repro.ml import GBTClassifier

        feats = extract_features(cluster.test)
        gbt = GBTClassifier(n_rounds=2).fit(
            feats.X[:50], np.full(50, 3)
        )
        cz = OnlineCategorizer(gbt)
        out = cz(list(cluster.test)[:5])
        assert np.array_equal(out, np.full(5, 3))


class TestPackedSingleSample:
    def test_decision_scores_one_matches_batch(self, cluster, pipe):
        gbt = pipe.model.model
        feats = extract_features(cluster.test)
        Xb = gbt.binner_.transform(feats.X[:32])
        k = len(gbt.classes_)
        batch = gbt.packed_.decision_scores(
            Xb, gbt.base_score_, gbt.learning_rate, k
        )
        for i in range(Xb.shape[0]):
            one = gbt.packed_.decision_scores_one(
                Xb[i], gbt.base_score_, gbt.learning_rate, k
            )
            assert np.array_equal(one, batch[i]), i

    def test_rejects_matrix_input(self, pipe):
        gbt = pipe.model.model
        with pytest.raises(ValueError, match="one sample"):
            gbt.packed_.decision_scores_one(
                np.zeros((2, 4), dtype=np.uint8), 0.0, 0.1, 1
            )


class TestOnlineService:
    def _offline(self, cluster, pipe, cap, engine):
        cats = pipe.model.predict(extract_features(cluster.test))
        policy = AdaptiveCategoryPolicy(
            cats, pipe.model_params.n_categories, pipe.adaptive_params
        )
        return simulate(cluster.test, policy, cap, engine=engine)

    def test_request_at_a_time_bit_identical(self, cluster, pipe):
        cap = 0.05 * cluster.test.peak_ssd_usage()
        off = self._offline(cluster, pipe, cap, "legacy")
        svc = PlacementService(
            OnlineAdaptivePolicy(
                pipe.model_params.n_categories, pipe.adaptive_params
            ),
            cap, mode="scalar", categorizer=OnlineCategorizer(pipe.model),
        )
        for j in cluster.test:
            assert len(svc.submit(j)) == 1
        res = svc.result()
        assert np.array_equal(res.ssd_fraction, off.ssd_fraction)
        assert res.realized_tco == off.realized_tco
        assert res.n_spilled == off.n_spilled

    def test_micro_batch_matches_chunked_to_roundoff(self, cluster, pipe):
        cap = 0.05 * cluster.test.peak_ssd_usage()
        off = self._offline(cluster, pipe, cap, "chunked")
        svc = PlacementService(
            OnlineAdaptivePolicy(
                pipe.model_params.n_categories, pipe.adaptive_params
            ),
            cap, mode="batch", categorizer=OnlineCategorizer(pipe.model),
        )
        svc.open()
        jobs = list(cluster.test)
        for lo in range(0, len(jobs), 64):
            svc.submit_jobs(jobs[lo : lo + 64])
        res = svc.result()
        # Chunk boundaries clamp at the submission horizon online, so
        # vectorized summation order may differ by float roundoff —
        # nothing else.
        np.testing.assert_allclose(
            res.ssd_fraction, off.ssd_fraction, atol=1e-9, rtol=1e-9
        )
        assert res.n_ssd_requested == off.n_ssd_requested
        assert res.n_spilled == off.n_spilled
        assert res.realized_tco == pytest.approx(off.realized_tco, rel=1e-12)

    def test_online_policy_requires_log(self, cluster):
        policy = OnlineAdaptivePolicy(8)
        with pytest.raises(ValueError, match="live JobLog"):
            policy.on_simulation_start(cluster.test, 1.0, None)

    def test_category_range_validated(self):
        policy = OnlineAdaptivePolicy(4)
        with pytest.raises(ValueError, match="out of range"):
            policy.extend_categories(np.array([0, 4]))

    def test_per_shard_act_online(self, cluster, pipe):
        """Per-shard thresholds work against the live log's routing."""
        cap = 0.05 * cluster.test.peak_ssd_usage()
        svc = PlacementService(
            OnlineAdaptivePolicy(
                pipe.model_params.n_categories, pipe.adaptive_params,
                per_shard_act=True,
            ),
            cap, 4, mode="batch", categorizer=OnlineCategorizer(pipe.model),
        )
        svc.open()
        jobs = list(cluster.test)
        for lo in range(0, len(jobs), 128):
            svc.submit_jobs(jobs[lo : lo + 128])
        res = svc.result()
        assert res.n_jobs == len(jobs)
        assert svc.policy.act_lanes is not None
        assert len(svc.policy.act_lanes) == 4
        assert any(e.shard >= 0 for e in svc.policy.trajectory)


class TestPipelineServe:
    def test_serve_returns_opened_service(self, cluster, pipe):
        peak = cluster.peak_ssd_usage
        svc = pipe.serve(0.05, peak, history=cluster.train)
        jobs = list(cluster.test)
        for lo in range(0, len(jobs), 256):
            svc.submit_jobs(jobs[lo : lo + 256])
        res = svc.result()
        assert res.n_jobs == len(jobs)
        assert res.policy_name == "Adaptive Online"
        # Model-driven serving beats nothing-on-SSD by construction on
        # this workload: some savings are realized.
        assert res.tco_savings_pct > 0

    def test_serve_warm_start_matches_deploy_categories(self, cluster, pipe):
        """Warm-started online serving reproduces deploy()'s placements:
        the same combined-trace history, the same model, the same
        adaptive algorithm — request-at-a-time."""
        peak = cluster.peak_ssd_usage
        off = pipe.deploy(
            cluster.test, cluster.features_test, 0.05, peak, engine="legacy"
        )
        svc = pipe.serve(0.05, peak, mode="scalar", history=cluster.train)
        for j in cluster.test:
            svc.submit(j)
        res = svc.result()
        assert np.array_equal(res.ssd_fraction, off.ssd_fraction)
        assert res.realized_tco == off.realized_tco

    def test_serve_n_workers_builds_bit_identical_fleet(self, cluster, pipe):
        from repro.serve import FleetRouter

        peak = cluster.peak_ssd_usage
        jobs = list(cluster.test)

        def drive(svc):
            for lo in range(0, len(jobs), 256):
                svc.submit_jobs(jobs[lo : lo + 256])
            return svc.result()

        base = drive(pipe.serve(0.05, peak, n_shards=4, history=cluster.train))
        svc = pipe.serve(
            0.05, peak, n_shards=4, history=cluster.train, n_workers=3
        )
        assert isinstance(svc, FleetRouter)
        res = drive(svc)
        svc.close()
        assert np.array_equal(res.ssd_fraction, base.ssd_fraction)
        assert res.realized_tco == base.realized_tco
        assert res.n_spilled == base.n_spilled

    def test_serve_shard_weights(self, cluster, pipe):
        svc = pipe.serve(
            0.05, cluster.peak_ssd_usage, n_shards=4,
            shard_weights=(2.0, 1.0, 1.0, 0.5),
        )
        total = svc.capacity
        np.testing.assert_allclose(
            svc.lane_capacities,
            total * np.array([2.0, 1.0, 1.0, 0.5]) / 4.5,
        )
        with pytest.raises(ValueError, match="shard_weights"):
            pipe.serve(0.05, 1.0, n_shards=4, shard_weights=(1.0, 2.0))
