"""Classification metric implementations."""

import numpy as np
import pytest

from repro.ml import accuracy, confusion_matrix, roc_auc, top_k_accuracy


class TestAccuracy:
    def test_perfect_and_zero(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0
        assert accuracy(y, np.array([1, 2, 0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_empty_is_nan(self):
        assert np.isnan(accuracy(np.array([]), np.array([])))


class TestTopK:
    def test_top2_includes_runner_up(self):
        proba = np.array([[0.5, 0.4, 0.1], [0.1, 0.5, 0.4]])
        classes = np.array([0, 1, 2])
        y = np.array([1, 2])
        assert top_k_accuracy(y, proba, classes, k=1) == 0.0
        assert top_k_accuracy(y, proba, classes, k=2) == 1.0

    def test_k_clipped_to_n_classes(self):
        proba = np.array([[0.6, 0.4]])
        assert top_k_accuracy(np.array([1]), proba, np.array([0, 1]), k=10) == 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        s = rng.uniform(size=5000)
        assert abs(roc_auc(y, s) - 0.5) < 0.03

    def test_ties_use_midrank(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(y, s) == pytest.approx(0.5)

    def test_single_class_nan(self):
        assert np.isnan(roc_auc(np.array([1, 1]), np.array([0.1, 0.2])))

    def test_known_value(self):
        # 1 discordant pair of 4: AUC = 3/4.
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.4, 0.35, 0.8])) == 0.75


class TestConfusion:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 2])
        cm = confusion_matrix(y, y, 3)
        assert cm.sum() == 4
        assert np.trace(cm) == 4

    def test_rows_are_true_labels(self):
        cm = confusion_matrix(np.array([0, 0]), np.array([1, 1]), 2)
        assert cm[0, 1] == 2
        assert cm[1, 0] == 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 2)
