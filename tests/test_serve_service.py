"""Online placement service: replay identity, live events, checkpointing.

Pillars:

1. **Replay bit-identity** — submitting a trace through the service
   (request-at-a-time or any micro-batch slicing) reproduces the
   offline ``simulate``/``simulate_sharded`` run exactly, for every
   batched policy family, both engines, and 1/4/16 shards.  This is
   structural (the service drives the same incremental kernels), and
   these tests pin it bit-for-bit.
2. **Live semantics** — queueing/backpressure, early ``complete``
   events (including duplicate completes), and edge hardening (empty
   stream, zero-capacity lanes, out-of-order submissions).
3. **Checkpointing** — ``snapshot``/``restore`` round-trips mid-replay
   and resumes to the exact uninterrupted result.
"""

import pickle

import numpy as np
import pytest

from repro.baselines import (
    CategoryAdmissionPolicy,
    FirstFitPolicy,
    LifetimeModel,
    LifetimePolicy,
)
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.cost import DEFAULT_RATES
from repro.serve import PlacementService
from repro.storage import FixedPolicy, simulate, simulate_sharded
from repro.units import GIB
from repro.workloads import Trace
from repro.workloads.features import extract_features

from helpers import make_job


def random_trace(seed: int, n: int = 500, span: float = 100_000.0) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, span, n))
    jobs = [
        make_job(
            i,
            arrival=float(arrivals[i]),
            duration=float(rng.uniform(30.0, span / 8)),
            size=float(rng.uniform(0.05, 25.0) * GIB),
            pipeline=f"pipe{int(rng.integers(0, 10))}",
        )
        for i in range(n)
    ]
    return Trace(jobs, name=f"rand{seed}")


def make_policy_builders(trace, seed):
    """One builder per batched policy family (mirrors the runtime tests)."""
    rng = np.random.default_rng(seed + 100)
    cats = rng.integers(0, 8, len(trace))
    params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
    train = random_trace(seed + 50)
    feats = extract_features(trace, DEFAULT_RATES)
    lt = LifetimeModel(n_rounds=3).fit(feats, trace.durations)
    decisions = rng.random(len(trace)) < 0.5
    return {
        "adaptive": lambda: AdaptiveCategoryPolicy(cats, 8, params),
        "heuristic": lambda: CategoryAdmissionPolicy(train, refresh_interval=9000.0),
        "firstfit": FirstFitPolicy,
        "fixed": lambda: FixedPolicy(decisions),
        "lifetime": lambda: LifetimePolicy(lt, feats),
    }


def assert_bit_identical(off, on, label=""):
    assert np.array_equal(on.ssd_fraction, off.ssd_fraction), label
    assert on.n_ssd_requested == off.n_ssd_requested, label
    assert on.n_spilled == off.n_spilled, label
    assert on.realized_tco == off.realized_tco, label
    assert on.realized_hdd_tcio == off.realized_hdd_tcio, label
    assert on.peak_ssd_used == off.peak_ssd_used, label
    assert on.baseline_tco == off.baseline_tco, label


class TestReplayIdentity:
    """Online replay == offline run, bit for bit."""

    @pytest.mark.parametrize("n_shards", (1, 4, 16))
    def test_scalar_mode_is_legacy_engine(self, n_shards):
        trace = random_trace(1)
        cap = 40 * GIB
        for name, build in make_policy_builders(trace, 1).items():
            off = (
                simulate(trace, build(), cap, engine="legacy")
                if n_shards == 1
                else simulate_sharded(trace, build(), cap, n_shards, engine="legacy")
            )
            svc = PlacementService(build(), cap, n_shards, mode="scalar")
            on = svc.replay(trace)
            assert_bit_identical(off, on, f"{name} x {n_shards} shards")

    @pytest.mark.parametrize("n_shards", (1, 4, 16))
    @pytest.mark.parametrize("batch_jobs", (1, 17, 100, None))
    def test_batch_mode_is_chunked_engine(self, n_shards, batch_jobs):
        trace = random_trace(2)
        cap = 40 * GIB
        for name, build in make_policy_builders(trace, 2).items():
            off = (
                simulate(trace, build(), cap, engine="chunked")
                if n_shards == 1
                else simulate_sharded(trace, build(), cap, n_shards, engine="chunked")
            )
            svc = PlacementService(build(), cap, n_shards, mode="batch")
            on = svc.replay(trace, batch_jobs=batch_jobs)
            assert_bit_identical(
                off, on, f"{name} x {n_shards} shards x batch {batch_jobs}"
            )

    def test_capacity_binding_replay(self):
        """Tight capacity (spill-heavy, scalar-fallback paths) stays exact."""
        trace = random_trace(3)
        cap = 2 * GIB
        cats = np.random.default_rng(5).integers(0, 6, len(trace))
        off = simulate(trace, AdaptiveCategoryPolicy(cats, 6), cap, engine="chunked")
        assert off.n_spilled > 0  # the regime under test
        svc = PlacementService(AdaptiveCategoryPolicy(cats, 6), cap, mode="batch")
        on = svc.replay(trace, batch_jobs=23)
        assert_bit_identical(off, on)
        assert on.scalar_fallback_jobs == off.scalar_fallback_jobs

    def test_heterogeneous_lane_replay(self):
        trace = random_trace(4)
        caps = np.array([2.0, 1.0, 1.0, 0.5]) * 10 * GIB
        cats = np.random.default_rng(6).integers(0, 6, len(trace))
        off = simulate_sharded(
            trace, AdaptiveCategoryPolicy(cats, 6, per_shard_act=True), caps, 4
        )
        svc = PlacementService(
            AdaptiveCategoryPolicy(cats, 6, per_shard_act=True), caps, 4, mode="batch"
        )
        on = svc.replay(trace, batch_jobs=50)
        assert_bit_identical(off, on)
        np.testing.assert_array_equal(on.lane_capacities, caps)

    def test_streamed_source_replay(self, tmp_path):
        """The replay entry point accepts sources/paths like the engine."""
        from repro.workloads import InMemoryTraceSource

        trace = random_trace(5, n=200)
        cap = 20 * GIB
        off = simulate(trace, FirstFitPolicy(), cap, engine="chunked")
        svc = PlacementService(FirstFitPolicy(), cap, mode="batch")
        on = svc.replay(InMemoryTraceSource(trace, block_size=64), batch_jobs=31)
        assert_bit_identical(off, on)


class TestQueueing:
    """Admission queueing and backpressure in batch mode."""

    def test_decisions_wait_for_policy_chunk(self):
        """A fixed policy declares the whole replay as one chunk, so
        nothing resolves until the chunk's last job arrives — the
        queue holds everything up to that point."""
        trace = random_trace(6, n=100)
        n = len(trace)
        decisions = np.ones(n, dtype=bool)
        svc = PlacementService(FixedPolicy(decisions), 50 * GIB, mode="batch")
        svc.open(trace)
        resolved = []
        for i in range(n - 1):
            resolved += svc.submit(
                arrival=trace.arrivals[i], duration=trace.durations[i],
                size=trace.sizes[i], pipeline=trace.pipelines[i],
            )
        assert resolved == []  # chunk (the whole replay) still incomplete
        assert svc.pending == n - 1
        # The last arrival completes the declared chunk: all resolve now.
        final = svc.submit(
            arrival=trace.arrivals[n - 1], duration=trace.durations[n - 1],
            size=trace.sizes[n - 1], pipeline=trace.pipelines[n - 1],
        )
        assert len(final) == n
        assert svc.pending == 0
        assert svc.drain() == []
        assert [d.index for d in final] == list(range(n))

    def test_max_pending_forces_chunks(self):
        trace = random_trace(7, n=120)
        decisions = np.ones(len(trace), dtype=bool)
        svc = PlacementService(
            FixedPolicy(decisions), 50 * GIB, mode="batch", max_pending=10
        )
        svc.open(trace)
        resolved = []
        for i in range(len(trace)):
            resolved += svc.submit(
                arrival=trace.arrivals[i], duration=trace.durations[i],
                size=trace.sizes[i], pipeline=trace.pipelines[i],
            )
            assert svc.pending <= 10
        assert svc.stats.forced_chunks > 0
        resolved += svc.drain()
        assert len(resolved) == len(trace)

    def test_adaptive_chunks_resolve_incrementally(self):
        """Interval-bounded policies resolve decisions as intervals
        close, without waiting for the whole stream."""
        trace = random_trace(8, n=300)
        cats = np.random.default_rng(1).integers(0, 6, len(trace))
        params = AdaptiveParams(decision_interval=500.0, lookback_window=2000.0)
        svc = PlacementService(
            AdaptiveCategoryPolicy(cats, 6, params), 20 * GIB, mode="batch"
        )
        svc.open(trace)
        resolved = 0
        for i in range(len(trace)):
            resolved += len(
                svc.submit(
                    arrival=trace.arrivals[i], duration=trace.durations[i],
                    size=trace.sizes[i], pipeline=trace.pipelines[i],
                )
            )
        assert resolved > 0  # chunks closed mid-stream
        svc.drain()
        assert svc.n_decided == len(trace)


class TestCompleteEvents:
    """Early completion frees space; duplicates are safe no-ops."""

    def _two_job_service(self, mode):
        svc = PlacementService(
            FirstFitPolicy(), 10 * GIB, mode=mode, track_jobs=True
        )
        return svc

    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_complete_frees_space_early(self, mode):
        svc = self._two_job_service(mode)
        # Job 0 fills the pool for a long lifetime.
        d0 = svc.submit(
            arrival=0.0, duration=10_000.0, size=10 * GIB, job_id="a"
        ) + svc.drain()
        assert d0[0].requested_ssd
        assert svc.complete("a", time=10.0) is True
        # With the space back, a second full-pool job fits at t=20.
        d1 = svc.submit(
            arrival=20.0, duration=100.0, size=10 * GIB, job_id="b"
        ) + svc.drain()
        assert d1[0].requested_ssd and d1[0].ssd_space_fraction == 1.0
        assert svc.stats.n_completions == 1

    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_duplicate_complete_is_counted_noop(self, mode):
        svc = self._two_job_service(mode)
        svc.submit(arrival=0.0, duration=10_000.0, size=4 * GIB, job_id="a")
        if mode == "batch":
            svc.drain()
        assert svc.complete("a", time=1.0) is True
        free_after_first = svc.kernel.free.copy()
        assert svc.complete("a", time=2.0) is False  # duplicate: no double-free
        assert svc.complete("a") is False
        np.testing.assert_array_equal(svc.kernel.free, free_after_first)
        assert svc.stats.duplicate_completes == 2
        assert svc.stats.n_completions == 1

    def test_batch_complete_does_not_double_count(self):
        """Regression: the cancelled job's scheduled release must not be
        applied again without its compensation in a later chunk — a
        completed full-pool job frees its space exactly once."""
        svc = self._two_job_service("batch")
        svc.submit(arrival=0.0, duration=100.0, size=10 * GIB, job_id="a")
        svc.drain()
        assert svc.complete("a", time=10.0) is True
        # Job B arrives after A's *scheduled* release (t=100): with
        # correct accounting the pool holds exactly 10 GiB, so a
        # 15 GiB job must spill its unfit remainder.
        d = svc.submit(arrival=150.0, duration=10.0, size=15 * GIB, job_id="b")
        d = d + svc.drain()
        assert d[0].requested_ssd is False or d[0].ssd_space_fraction < 1.0
        res = svc.result()
        assert res.peak_ssd_used <= 10 * GIB + 1e-6

    def test_batch_job_ids_length_validated(self):
        svc = self._two_job_service("batch")
        with pytest.raises(ValueError, match="job_ids"):
            svc.submit_batch(
                np.array([0.0, 1.0]), np.array([10.0, 10.0]),
                np.array([1.0, 1.0]), job_ids=["only-one"],
            )

    def test_complete_unknown_job(self):
        svc = self._two_job_service("scalar")
        assert svc.complete("never-submitted") is False
        assert svc.stats.duplicate_completes == 1

    def test_complete_after_natural_release(self):
        svc = self._two_job_service("scalar")
        svc.submit(arrival=0.0, duration=5.0, size=1 * GIB, job_id="a")
        # Advance past the job's scheduled release.
        svc.submit(arrival=100.0, duration=5.0, size=1 * GIB, job_id="b")
        assert svc.complete("a") is False  # already released by timeout
        free = float(svc.kernel.free.sum())
        svc.complete("a")
        assert float(svc.kernel.free.sum()) == free

    def test_stale_complete_clamps_and_counts(self):
        """A ``complete`` timestamped *earlier* than the service clock is
        clamped to it (time never runs backwards) and counted."""
        svc = self._two_job_service("batch")
        svc.submit(arrival=0.0, duration=10_000.0, size=2 * GIB, job_id="a")
        svc.submit(arrival=500.0, duration=10_000.0, size=2 * GIB, job_id="b")
        svc.drain()  # clock is now at 500.0
        assert svc.complete("a", time=100.0) is True  # stale but freed
        assert svc.stats.stale_completes == 1
        assert svc.stats.n_completions == 1
        # The clock did not move back: a submission at t=200 (< 500)
        # would be out of order and is still rejected.
        with pytest.raises(ValueError, match="order"):
            svc.submit(arrival=200.0, duration=10.0, size=1 * GIB)

    def test_complete_between_now_and_open_chunk_horizon(self):
        """Regression for the horizon guard: batch mode can advance the
        kernel's release cursor past the service clock when a chunk
        opens.  A ``complete`` for a job whose scheduled release falls
        in that gap must be a no-op — the kernel already freed it when
        the cursor swept by — never a second free."""
        svc = self._two_job_service("batch")
        svc.submit(arrival=0.0, duration=100.0, size=10 * GIB, job_id="a")
        svc.drain()  # decided; scheduled release at t=100
        # Queue a job at t=150: opening its chunk sweeps the release
        # cursor (the horizon) past 150, releasing job a on the way.
        svc.submit(arrival=150.0, duration=10.0, size=1 * GIB, job_id="b")
        assert svc.complete("a") is False  # released by the sweep already
        svc.drain()
        assert float(svc.kernel.free.sum()) <= 10 * GIB + 1e-6

    def test_complete_routes_to_correct_lane(self):
        svc = PlacementService(FirstFitPolicy(), 8 * GIB, 4, mode="scalar")
        d = svc.submit(
            arrival=0.0, duration=10_000.0, size=1.5 * GIB,
            pipeline="pipeX", job_id="x",
        )[0]
        lane = d.shard
        before = svc.kernel.free.copy()
        assert svc.complete("x", time=1.0)
        after = svc.kernel.free
        assert after[lane] == pytest.approx(before[lane] + 1.5 * GIB)
        others = [k for k in range(4) if k != lane]
        np.testing.assert_array_equal(after[others], before[others])


class TestEdgeHardening:
    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_empty_stream(self, mode):
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, mode=mode)
        res = svc.result()
        assert res.n_jobs == 0
        assert res.tco_savings_pct == 0.0
        assert res.n_spilled == 0
        assert len(res.ssd_fraction) == 0

    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_empty_trace_replay(self, mode):
        trace = Trace([], name="empty")
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, mode=mode)
        res = svc.replay(trace)
        off = simulate(
            trace, FirstFitPolicy(), 10 * GIB,
            engine="legacy" if mode == "scalar" else "chunked",
        )
        assert res.n_jobs == off.n_jobs == 0
        assert res.realized_tco == off.realized_tco

    def test_zero_capacity_lane(self):
        """A zero-capacity caching server spills everything routed to it."""
        caps = np.array([10 * GIB, 0.0])
        trace = random_trace(9, n=100)
        off = simulate_sharded(trace, FirstFitPolicy(), caps, 2)
        svc = PlacementService(FirstFitPolicy(), caps, 2, mode="batch")
        on = svc.replay(trace, batch_jobs=13)
        assert_bit_identical(off, on)

    def test_zero_total_capacity(self):
        svc = PlacementService(FirstFitPolicy(), 0.0, mode="scalar")
        d = svc.submit(arrival=0.0, duration=10.0, size=1 * GIB)[0]
        assert not d.requested_ssd  # nothing ever fits
        assert svc.result().peak_ssd_used == 0.0

    def test_out_of_order_submission_rejected(self):
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, mode="scalar")
        svc.submit(arrival=100.0, duration=10.0, size=1 * GIB)
        with pytest.raises(ValueError, match="arrival-ordered"):
            svc.submit(arrival=50.0, duration=10.0, size=1 * GIB)

    def test_negative_job_rejected(self):
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, mode="scalar")
        with pytest.raises(ValueError, match="negative"):
            svc.submit(arrival=0.0, duration=-1.0, size=1 * GIB)

    def test_batch_mode_requires_decide_batch(self):
        class ScalarOnly(FirstFitPolicy):
            decide_batch = None

        with pytest.raises(ValueError, match="decide_batch"):
            PlacementService(ScalarOnly(), 10 * GIB, mode="batch")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            PlacementService(FirstFitPolicy(), 10 * GIB, mode="stream")

    def test_result_without_drain_raises(self):
        trace = random_trace(10, n=50)
        svc = PlacementService(
            FixedPolicy(np.ones(len(trace), dtype=bool)), 10 * GIB, mode="batch"
        )
        svc.open(trace)
        svc.submit(
            arrival=trace.arrivals[0], duration=trace.durations[0],
            size=trace.sizes[0], pipeline=trace.pipelines[0],
        )
        with pytest.raises(RuntimeError, match="queued"):
            svc.result(drain=False)
        svc.drain()
        assert svc.result(drain=False).n_jobs == 1

    def test_double_open_rejected(self):
        svc = PlacementService(FirstFitPolicy(), 10 * GIB)
        svc.open()
        with pytest.raises(RuntimeError, match="opened"):
            svc.open()


class TestSnapshotRestore:
    """Checkpointing: snapshot mid-replay, restore, resume, identical."""

    def _setup(self, seed, n_shards=1, mode="batch"):
        trace = random_trace(seed, n=400)
        cats = np.random.default_rng(seed).integers(0, 6, len(trace))
        params = AdaptiveParams(decision_interval=600.0, lookback_window=3000.0)
        cap = 15 * GIB
        build = lambda: AdaptiveCategoryPolicy(cats, 6, params)  # noqa: E731
        off = (
            simulate(trace, build(), cap,
                     engine="chunked" if mode == "batch" else "legacy")
            if n_shards == 1
            else simulate_sharded(
                trace, build(), cap, n_shards,
                engine="chunked" if mode == "batch" else "legacy",
            )
        )
        svc = PlacementService(build(), cap, n_shards, mode=mode)
        svc.open(trace)
        return trace, off, svc

    def _submit_range(self, svc, trace, lo, hi, step=37):
        for a in range(lo, hi, step):
            b = min(a + step, hi)
            svc.submit_batch(
                trace.arrivals[a:b], trace.durations[a:b], trace.sizes[a:b],
                trace.read_bytes[a:b], trace.write_bytes[a:b],
                trace.read_ops[a:b], pipelines=trace.pipelines[a:b],
            )

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_mid_replay_roundtrip_resume(self, n_shards):
        trace, off, svc = self._setup(11, n_shards)
        half = len(trace) // 2
        self._submit_range(svc, trace, 0, half)
        snap = svc.snapshot()

        # Path A: the original service finishes.
        self._submit_range(svc, trace, half, len(trace))
        res_a = svc.result()
        assert_bit_identical(off, res_a, "original")

        # Path B: a restored service finishes from the checkpoint.
        svc_b = PlacementService.restore(snap)
        self._submit_range(svc_b, trace, half, len(trace))
        res_b = svc_b.result()
        assert_bit_identical(off, res_b, "restored")

    def test_snapshot_is_isolated_from_original(self):
        trace, off, svc = self._setup(12)
        half = len(trace) // 2
        self._submit_range(svc, trace, 0, half)
        snap = svc.snapshot()
        n_at_snap = snap.n_submitted
        # Finishing the original must not disturb the checkpoint ...
        self._submit_range(svc, trace, half, len(trace))
        svc.result()
        assert snap.n_submitted == n_at_snap
        # ... and one snapshot restores more than once, identically.
        for _ in range(2):
            svc_r = PlacementService.restore(snap)
            self._submit_range(svc_r, trace, half, len(trace))
            assert_bit_identical(off, svc_r.result(), "re-restore")

    def test_snapshot_pickles(self):
        """On-disk checkpointing: the snapshot survives pickling."""
        trace, off, svc = self._setup(13)
        half = len(trace) // 2
        self._submit_range(svc, trace, 0, half)
        blob = pickle.dumps(svc.snapshot())
        svc_r = PlacementService.restore(pickle.loads(blob))
        self._submit_range(svc_r, trace, half, len(trace))
        assert_bit_identical(off, svc_r.result(), "pickled")

    @pytest.mark.parametrize("frac", (0.25, 0.5, 0.9))
    def test_snapshot_with_pending_jobs(self, frac):
        """Snapshot semantics with undecided jobs in the queue: pending
        submissions are part of the snapshot (``n_pending`` reports
        them), and a restored service resumes — queue intact — to the
        exact uninterrupted result without resubmitting them."""
        trace, off, svc = self._setup(15)
        # Cut at the first micro-batch boundary past ``frac`` where the
        # service actually holds undecided jobs (chunk boundaries are
        # policy-timed, so a fixed index could land on an empty queue).
        cut = None
        for a in range(0, len(trace), 37):
            b = min(a + 37, len(trace))
            self._submit_range(svc, trace, a, b, step=37)
            if b >= frac * len(trace) and svc.pending > 0:
                cut = b
                break
        assert cut is not None, "no pending-jobs cut point found"
        snap = svc.snapshot()
        assert snap.n_pending == svc.pending
        assert snap.n_pending > 0  # the regime under test
        assert snap.n_submitted == cut
        assert snap.n_decided == cut - snap.n_pending

        svc_r = PlacementService.restore(snap)
        assert svc_r.pending == snap.n_pending
        self._submit_range(svc_r, trace, cut, len(trace), step=37)
        assert_bit_identical(off, svc_r.result(), f"pending cut {cut}")

    def test_scalar_mode_snapshot(self):
        trace, off, svc = self._setup(14, mode="scalar")
        half = len(trace) // 2
        for i in range(half):
            svc.submit(
                arrival=trace.arrivals[i], duration=trace.durations[i],
                size=trace.sizes[i], read_bytes=trace.read_bytes[i],
                write_bytes=trace.write_bytes[i], read_ops=trace.read_ops[i],
                pipeline=trace.pipelines[i],
            )
        snap = svc.snapshot()
        svc_r = PlacementService.restore(snap)
        for i in range(half, len(trace)):
            svc_r.submit(
                arrival=trace.arrivals[i], duration=trace.durations[i],
                size=trace.sizes[i], read_bytes=trace.read_bytes[i],
                write_bytes=trace.write_bytes[i], read_ops=trace.read_ops[i],
                pipeline=trace.pipelines[i],
            )
        assert_bit_identical(off, svc_r.result(), "scalar restore")


class TestAggregateOnly:
    """Constant-memory results: aggregates identical, arrays dropped."""

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_simulate_aggregate_only(self, engine):
        trace = random_trace(15, n=200)
        cats = np.random.default_rng(2).integers(0, 6, len(trace))
        full = simulate(trace, AdaptiveCategoryPolicy(cats, 6), 10 * GIB, engine=engine)
        agg = simulate(
            trace, AdaptiveCategoryPolicy(cats, 6), 10 * GIB, engine=engine,
            aggregate_only=True,
        )
        assert agg.ssd_fraction is None
        assert agg.aggregate_only and not full.aggregate_only
        for f in ("realized_tco", "baseline_tco", "realized_hdd_tcio",
                  "baseline_tcio", "n_ssd_requested", "n_spilled",
                  "peak_ssd_used", "n_jobs"):
            assert getattr(agg, f) == getattr(full, f), f
        assert agg.tco_savings_pct == full.tco_savings_pct

    def test_sharded_aggregate_only(self):
        trace = random_trace(16, n=200)
        full = simulate_sharded(trace, FirstFitPolicy(), 10 * GIB, 4)
        agg = simulate_sharded(
            trace, FirstFitPolicy(), 10 * GIB, 4, aggregate_only=True
        )
        assert agg.ssd_fraction is None
        assert agg.realized_tco == full.realized_tco
        np.testing.assert_array_equal(agg.lane_capacities, full.lane_capacities)

    def test_service_aggregate_only(self):
        trace = random_trace(17, n=200)
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, mode="batch")
        svc.open(trace)
        svc.submit_batch(
            trace.arrivals, trace.durations, trace.sizes,
            trace.read_bytes, trace.write_bytes, trace.read_ops,
            pipelines=trace.pipelines,
        )
        res = svc.result(aggregate_only=True)
        full = simulate(trace, FirstFitPolicy(), 10 * GIB, engine="chunked")
        assert res.ssd_fraction is None
        assert res.realized_tco == full.realized_tco
