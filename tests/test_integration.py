"""End-to-end integration: the full BYOM story on one small cluster.

Exercises the complete chain — generation, features, labels, training,
adaptive deployment, baselines, oracle — and checks the paper's core
qualitative relationships hold even at this small scale.
"""

import numpy as np
import pytest

from repro.baselines import FirstFitPolicy
from repro.config import AdaptiveParams, ModelParams
from repro.core import ByomPipeline, hash_categories, prepare_cluster
from repro.core.adaptive import AdaptiveCategoryPolicy
from repro.oracle import oracle_placement
from repro.storage import analytic_result, simulate


@pytest.fixture(scope="module")
def setting(two_week_trace):
    cluster = prepare_cluster(two_week_trace)
    pipe = ByomPipeline(ModelParams(n_categories=8, n_rounds=6, max_depth=4))
    pipe.train(cluster.train, cluster.features_train)
    return cluster, pipe


class TestEndToEnd:
    def test_byom_beats_hash_ablation(self, setting):
        cluster, pipe = setting
        quota = 0.02
        cap = quota * cluster.peak_ssd_usage
        ours = pipe.deploy(cluster.test, cluster.features_test, quota,
                           cluster.peak_ssd_usage)
        hashp = AdaptiveCategoryPolicy(
            hash_categories(cluster.test, 8), 8, AdaptiveParams(),
            name="Adaptive Hash",
        )
        hash_res = simulate(cluster.test, hashp, cap)
        assert ours.tco_savings_pct > hash_res.tco_savings_pct

    def test_relaxed_oracle_dominates_everything(self, setting):
        cluster, pipe = setting
        quota = 0.02
        cap = quota * cluster.peak_ssd_usage
        oracle = oracle_placement(cluster.test, cap, "tco", integrality=False)
        upper = analytic_result(
            cluster.test, oracle.ssd_fraction(), cap, name="oracle"
        ).tco_savings_pct
        for policy_result in (
            pipe.deploy(cluster.test, cluster.features_test, quota,
                        cluster.peak_ssd_usage),
            simulate(cluster.test, FirstFitPolicy(), cap),
        ):
            assert upper >= policy_result.tco_savings_pct - 1e-6

    def test_binary_oracle_below_relaxed(self, setting):
        cluster, _ = setting
        cap = 0.02 * cluster.peak_ssd_usage
        relaxed = oracle_placement(cluster.test, cap, "tco", integrality=False)
        binary = oracle_placement(
            cluster.test, cap, "tco", integrality=True, max_milp_jobs=5000,
            time_limit=30.0,
        )
        assert relaxed.objective_value >= binary.objective_value - 1e-6

    def test_adaptive_trajectory_reacts_to_quota(self, setting):
        cluster, pipe = setting
        acts = {}
        for quota in (0.001, 0.5):
            policy = pipe.make_policy(cluster.test, cluster.features_test)
            simulate(cluster.test, policy, quota * cluster.peak_ssd_usage)
            acts[quota] = np.mean([e.act for e in policy.trajectory])
        assert acts[0.001] >= acts[0.5]

    def test_savings_reported_relative_to_all_hdd(self, setting):
        cluster, pipe = setting
        res = pipe.deploy(cluster.test, cluster.features_test, 0.05,
                          cluster.peak_ssd_usage)
        costs = cluster.test.costs()
        manual = 100 * (costs.c_hdd.sum() - res.realized_tco) / costs.c_hdd.sum()
        assert res.tco_savings_pct == pytest.approx(manual)
