"""Shared fixtures: small, fast traces reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import DAY, GIB, HOUR, MIB
from repro.workloads import ClusterSpec, ShuffleJob, Trace, generate_cluster_trace


def make_job(
    job_id: int = 0,
    arrival: float = 0.0,
    duration: float = 600.0,
    size: float = 1 * GIB,
    read_ops: float = 10_000.0,
    read_bytes: float = 2 * GIB,
    write_bytes: float = 1 * GIB,
    pipeline: str = "pipe0",
    user: str = "user0",
    cluster: str = "T",
    archetype: str = "dbquery",
    step: int = 0,
) -> ShuffleJob:
    """A hand-built job with sensible defaults for unit tests."""
    return ShuffleJob(
        job_id=job_id,
        cluster=cluster,
        user=user,
        pipeline=pipeline,
        archetype=archetype,
        arrival=arrival,
        duration=duration,
        size=size,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        read_ops=read_ops,
        metadata={
            "build_target_name": f"//team/{archetype}/buildmanager:bin",
            "execution_name": f"com.team.{archetype}.Main",
            "pipeline_name": pipeline,
            "step_name": f"s{step}-open-shuffle{step}",
            "user_name": f"GroupByKey-{step}",
        },
        resources={
            "bucket_sizing_initial_num_stripes": 4.0,
            "bucket_sizing_num_shards": 32.0,
            "bucket_sizing_num_worker_threads": 4.0,
            "bucket_sizing_num_workers": 16.0,
            "initial_num_buckets": 64.0,
            "num_buckets": 64.0,
            "records_written": 1e6,
            "requested_num_shards": 32.0,
        },
    )


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A generated ~2-day trace, small enough for fast tests."""
    spec = ClusterSpec(
        name="small",
        archetype_weights={"dbquery": 2, "logproc": 2, "streaming": 1, "staging": 1},
        n_pipelines=8,
        n_users=4,
        seed=123,
    )
    return generate_cluster_trace(spec, duration=2 * DAY)


@pytest.fixture(scope="session")
def two_week_trace() -> Trace:
    """A small two-week trace for train/test-split integration tests."""
    spec = ClusterSpec(
        name="tw",
        archetype_weights={"dbquery": 2, "logproc": 1, "streaming": 1,
                           "staging": 1, "mltrain": 1},
        n_pipelines=8,
        n_users=4,
        seed=7,
    )
    return generate_cluster_trace(spec, duration=14 * DAY)


@pytest.fixture()
def handmade_trace() -> Trace:
    """Four deterministic jobs spanning known intervals."""
    jobs = [
        make_job(0, arrival=0.0, duration=100.0, size=10 * GIB, pipeline="a"),
        make_job(1, arrival=50.0, duration=100.0, size=20 * GIB, pipeline="a"),
        make_job(2, arrival=120.0, duration=50.0, size=5 * GIB, pipeline="b"),
        make_job(3, arrival=200.0, duration=400.0, size=1 * GIB, pipeline="b"),
    ]
    return Trace(jobs, name="handmade")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
