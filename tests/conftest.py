"""Shared fixtures: small, fast traces reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import DAY, GIB
from repro.workloads import ClusterSpec, Trace, generate_cluster_trace

from helpers import make_job  # noqa: F401  (re-exported for fixtures below)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A generated ~2-day trace, small enough for fast tests."""
    spec = ClusterSpec(
        name="small",
        archetype_weights={"dbquery": 2, "logproc": 2, "streaming": 1, "staging": 1},
        n_pipelines=8,
        n_users=4,
        seed=123,
    )
    return generate_cluster_trace(spec, duration=2 * DAY)


@pytest.fixture(scope="session")
def two_week_trace() -> Trace:
    """A small two-week trace for train/test-split integration tests."""
    spec = ClusterSpec(
        name="tw",
        archetype_weights={"dbquery": 2, "logproc": 1, "streaming": 1,
                           "staging": 1, "mltrain": 1},
        n_pipelines=8,
        n_users=4,
        seed=7,
    )
    return generate_cluster_trace(spec, duration=14 * DAY)


@pytest.fixture()
def handmade_trace() -> Trace:
    """Four deterministic jobs spanning known intervals."""
    jobs = [
        make_job(0, arrival=0.0, duration=100.0, size=10 * GIB, pipeline="a"),
        make_job(1, arrival=50.0, duration=100.0, size=20 * GIB, pipeline="a"),
        make_job(2, arrival=120.0, duration=50.0, size=5 * GIB, pipeline="b"),
        make_job(3, arrival=200.0, duration=400.0, size=1 * GIB, pipeline="b"),
    ]
    return Trace(jobs, name="handmade")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
