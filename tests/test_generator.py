"""Cluster trace generation: determinism, structure, churn, diversity."""

import numpy as np
import pytest

from repro.units import DAY, WEEK
from repro.workloads import (
    ARCHETYPES,
    ClusterSpec,
    default_cluster_specs,
    generate_cluster_trace,
)


def _spec(**kw):
    base = dict(
        name="G",
        archetype_weights={"dbquery": 1, "logproc": 1},
        n_pipelines=6,
        n_users=3,
        seed=5,
    )
    base.update(kw)
    return ClusterSpec(**base)


class TestClusterSpec:
    def test_rejects_unknown_archetype(self):
        with pytest.raises(ValueError, match="unknown archetypes"):
            _spec(archetype_weights={"nope": 1})

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            _spec(archetype_weights={})

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            _spec(archetype_weights={"dbquery": -1})

    def test_rejects_zero_pipelines(self):
        with pytest.raises(ValueError):
            _spec(n_pipelines=0)


class TestGeneration:
    def test_deterministic_same_seed(self):
        a = generate_cluster_trace(_spec(), duration=2 * DAY)
        b = generate_cluster_trace(_spec(), duration=2 * DAY)
        assert len(a) == len(b)
        assert np.allclose(a.arrivals, b.arrivals)
        assert np.allclose(a.sizes, b.sizes)

    def test_different_seed_differs(self):
        a = generate_cluster_trace(_spec(seed=1), duration=2 * DAY)
        b = generate_cluster_trace(_spec(seed=2), duration=2 * DAY)
        assert len(a) != len(b) or not np.allclose(a.sizes[: len(b)], b.sizes[: len(a)])

    def test_arrivals_within_span(self, small_trace):
        # Later steps of an execution start staggered, so jobs may begin
        # slightly past the nominal window; allow that slack.
        assert small_trace.arrivals.min() >= 0.0
        assert small_trace.arrivals.max() <= 2.5 * DAY

    def test_all_attributes_positive(self, small_trace):
        assert (small_trace.sizes > 0).all()
        assert (small_trace.durations > 0).all()
        assert (small_trace.read_ops >= 1).all()

    def test_only_requested_archetypes(self, small_trace):
        used = {j.archetype for j in small_trace}
        assert used <= {"dbquery", "logproc", "streaming", "staging"}

    def test_metadata_and_resources_populated(self, small_trace):
        job = small_trace[0]
        assert len(job.metadata) == 5
        assert len(job.resources) == 8

    def test_pipeline_job_consistency(self, small_trace):
        # All jobs of one pipeline share the same user and archetype.
        by_pipeline = {}
        for job in small_trace:
            key = job.pipeline
            if key in by_pipeline:
                assert by_pipeline[key] == (job.user, job.archetype)
            else:
                by_pipeline[key] = (job.user, job.archetype)


class TestChurn:
    def test_some_pipelines_appear_mid_trace(self):
        # Over many pipelines, churn must produce pipelines whose first
        # job arrives well after the trace start.
        spec = _spec(n_pipelines=40, seed=3)
        trace = generate_cluster_trace(spec, duration=2 * WEEK)
        first_arrival = {}
        for job in trace:
            first_arrival.setdefault(job.pipeline, job.arrival)
        assert any(t > 0.3 * 2 * WEEK for t in first_arrival.values())

    def test_some_pipelines_retire_early(self):
        spec = _spec(n_pipelines=40, seed=3)
        trace = generate_cluster_trace(spec, duration=2 * WEEK)
        last_arrival = {}
        for job in trace:
            last_arrival[job.pipeline] = job.arrival
        assert any(t < 0.7 * 2 * WEEK for t in last_arrival.values())


class TestDefaultSpecs:
    def test_ten_distinct_clusters(self):
        specs = default_cluster_specs(10)
        assert len(specs) == 10
        assert len({s.name for s in specs}) == 10
        assert len({s.seed for s in specs}) == 10

    def test_c3_is_outlier(self):
        specs = default_cluster_specs(10)
        c3 = specs[3]
        assert set(c3.archetype_weights) == {"mlcheckpoint", "compressupload"}

    def test_all_weights_valid(self):
        for spec in default_cluster_specs(10):
            assert set(spec.archetype_weights) <= set(ARCHETYPES)


class TestDiversity:
    def test_archetype_scale_gap(self):
        """Figure 1's point: workloads differ by orders of magnitude."""
        video = ARCHETYPES["video"]
        streaming = ARCHETYPES["streaming"]
        assert video.size_median / streaming.size_median > 50
        assert video.lifetime_median / streaming.lifetime_median > 10
