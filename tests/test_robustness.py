"""Multi-seed robustness harness (small instance for speed)."""

import pytest

from repro.analysis import multi_seed_comparison
from repro.config import ModelParams
from repro.workloads import ClusterSpec

FAST = ModelParams(n_categories=6, n_rounds=3, max_depth=3)

SPEC = ClusterSpec(
    name="robust",
    archetype_weights={"dbquery": 2, "logproc": 2, "streaming": 1, "staging": 1},
    n_pipelines=6,
    n_users=3,
    seed=0,
)


class TestMultiSeedComparison:
    @pytest.fixture(scope="class")
    def report(self):
        return multi_seed_comparison(
            SPEC,
            seeds=(0, 1),
            methods=("Adaptive Ranking", "FirstFit"),
            quota=0.05,
            model_params=FAST,
        )

    def test_structure(self, report):
        assert set(report.per_seed) == {"Adaptive Ranking", "FirstFit"}
        assert set(report.per_seed["FirstFit"]) == {0, 1}
        assert report.summary["FirstFit"]["n"] == 2

    def test_win_fraction_bounds(self, report):
        assert 0.0 <= report.win_fraction <= 1.0

    def test_summary_consistent_with_per_seed(self, report):
        vals = list(report.per_seed["Adaptive Ranking"].values())
        assert report.summary["Adaptive Ranking"]["max"] == pytest.approx(max(vals))
        assert report.summary["Adaptive Ranking"]["min"] == pytest.approx(min(vals))

    def test_focal_must_be_included(self):
        with pytest.raises(ValueError):
            multi_seed_comparison(
                SPEC, seeds=(0,), methods=("FirstFit",), focal_method="Adaptive Ranking",
                model_params=FAST,
            )
