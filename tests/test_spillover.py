"""Spillover-TCIO signal computation (Section 4.3)."""

import pytest

from repro.core import ObservedJob, spillover_percentage, spillover_tcio


def obs(arrival=0.0, end=100.0, rate=1.0, ssd=True, spill=None, frac=0.0):
    return ObservedJob(
        arrival=arrival,
        end=end,
        tcio_rate=rate,
        scheduled_ssd=ssd,
        spill_time=spill,
        spilled_fraction=frac,
    )


class TestSpilloverTcio:
    def test_zero_without_spill(self):
        assert spillover_tcio(obs(), t=50.0) == 0.0

    def test_zero_for_hdd_jobs(self):
        job = obs(ssd=False, spill=0.0, frac=1.0)
        assert spillover_tcio(job, t=50.0) == 0.0

    def test_full_spill_from_arrival(self):
        # Spilled immediately and fully: spillover equals cumulative TCIO.
        job = obs(spill=0.0, frac=1.0, rate=2.0)
        assert spillover_tcio(job, t=50.0) == pytest.approx(100.0)

    def test_partial_fraction_scales(self):
        job = obs(spill=0.0, frac=0.25, rate=2.0)
        assert spillover_tcio(job, t=50.0) == pytest.approx(25.0)

    def test_midlife_spill_weighting(self):
        # Paper formula: weight (t - ts) / (t - ta).
        job = obs(spill=40.0, frac=1.0, rate=1.0)
        expected = (80.0 - 40.0) / 80.0 * 80.0
        assert spillover_tcio(job, t=80.0) == pytest.approx(expected)

    def test_spill_after_t_ignored(self):
        job = obs(spill=60.0, frac=1.0)
        assert spillover_tcio(job, t=50.0) == 0.0


class TestSpilloverPercentage:
    def test_empty_history(self):
        assert spillover_percentage([], t=10.0) == 0.0

    def test_all_hdd_history(self):
        history = [obs(ssd=False), obs(ssd=False)]
        assert spillover_percentage(history, t=50.0) == 0.0

    def test_no_spill_is_zero(self):
        history = [obs(), obs(arrival=10.0)]
        assert spillover_percentage(history, t=50.0) == 0.0

    def test_everything_spilled_is_one(self):
        history = [obs(spill=0.0, frac=1.0), obs(arrival=10.0, spill=10.0, frac=1.0)]
        assert spillover_percentage(history, t=50.0) == pytest.approx(1.0)

    def test_half_spilled(self):
        history = [obs(spill=0.0, frac=1.0, rate=1.0), obs(frac=0.0, rate=1.0)]
        assert spillover_percentage(history, t=50.0) == pytest.approx(0.5)

    def test_bounded_in_unit_interval(self):
        history = [
            obs(spill=20.0, frac=0.7, rate=3.0),
            obs(arrival=5.0, frac=0.0, rate=0.5),
            obs(arrival=30.0, spill=30.0, frac=1.0, rate=2.0),
        ]
        p = spillover_percentage(history, t=60.0)
        assert 0.0 <= p <= 1.0
