"""Unit constants and formatting helpers."""

from repro.units import (
    DAY,
    GIB,
    HOUR,
    KIB,
    MIB,
    PIB,
    TIB,
    WEEK,
    fmt_bytes,
    fmt_duration,
)


def test_byte_scale_chain():
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert TIB == 1024 * GIB
    assert PIB == 1024 * TIB


def test_time_scale_chain():
    assert HOUR == 3600
    assert DAY == 24 * HOUR
    assert WEEK == 7 * DAY


def test_fmt_bytes_units():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2 * KIB) == "2.00 KiB"
    assert fmt_bytes(1.5 * GIB) == "1.50 GiB"
    assert fmt_bytes(3 * PIB) == "3.00 PiB"


def test_fmt_bytes_negative():
    assert fmt_bytes(-2 * GIB) == "-2.00 GiB"


def test_fmt_duration_units():
    assert fmt_duration(30) == "30s"
    assert fmt_duration(120) == "2.0m"
    assert fmt_duration(2 * HOUR) == "2.0h"
    assert fmt_duration(3 * DAY) == "3.0d"
