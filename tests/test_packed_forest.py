"""PackedForest: exact equivalence with per-tree HistogramTree.predict."""

import numpy as np
import pytest

from repro.ml import GBTClassifier, GBTRegressor, HistogramTree, PackedForest


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(1500, 9))
    X[:, 3] = rng.integers(0, 2, size=1500)  # a binary feature
    y_cls = rng.integers(0, 5, size=1500)
    y_reg = rng.normal(size=1500)
    Xq = rng.normal(size=(700, 9)) * 2.0  # includes unseen ranges
    Xq[:, 3] = rng.integers(0, 2, size=700)
    return X, y_cls, y_reg, Xq


class TestPackedEquivalence:
    def test_per_tree_leaf_values_exact(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=6).fit(X, y_cls)
        Xb = model.binner_.transform(Xq)
        packed = model.packed_
        leaf = packed.predict(Xb)
        flat = [t for round_trees in model.trees_ for t in round_trees]
        assert leaf.shape == (len(Xq), len(flat))
        for j, tree in enumerate(flat):
            assert np.array_equal(leaf[:, j], tree.predict(Xb))

    def test_classifier_decision_function_bit_identical(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=6).fit(X, y_cls)
        assert np.array_equal(
            model.decision_function(Xq), model._decision_function_legacy(Xq)
        )

    def test_classifier_chunk_boundaries(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=4).fit(X, y_cls)
        Xb = model.binner_.transform(Xq)
        full = model.packed_.predict(Xb)
        for chunk in (1, 7, len(Xq), 10 * len(Xq)):
            assert np.array_equal(model.packed_.predict(Xb, chunk_size=chunk), full)

    def test_regressor_predict_bit_identical(self, data):
        X, _, y_reg, Xq = data
        model = GBTRegressor(n_rounds=9).fit(X, y_reg)
        Xb = model.binner_.transform(Xq)
        ref = np.full(len(Xq), model.base_score_)
        for tree in model.trees_:
            ref += model.learning_rate * tree.predict(Xb)
        assert np.array_equal(model.predict(Xq), ref)

    def test_single_class_degenerate(self, data):
        X, _, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, np.zeros(len(X)))
        assert model.packed_ is None
        assert np.array_equal(
            model.decision_function(Xq), model._decision_function_legacy(Xq)
        )
        assert (model.predict(Xq) == 0).all()


class TestPackedConstruction:
    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            PackedForest.from_trees([])

    def test_mixed_depth_rejected(self, data):
        X, _, y_reg, _ = data
        rng = np.random.default_rng(0)
        Xb = (rng.random((200, 3)) * 10).astype(np.uint8)
        g = rng.normal(size=200)
        h = np.ones(200)
        t1 = HistogramTree.fit(Xb, g, h, max_depth=3)
        t2 = HistogramTree.fit(Xb, g, h, max_depth=4)
        with pytest.raises(ValueError):
            PackedForest.from_trees([t1, t2])

    def test_decision_scores_requires_divisible_classes(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, y_cls)
        Xb = model.binner_.transform(Xq)
        with pytest.raises(ValueError):
            model.packed_.decision_scores(Xb, 0.0, 0.3, n_classes=7)


class TestPredictionCache:
    def test_shared_pass_between_proba_and_predict(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=4).fit(X, y_cls)
        calls = {"n": 0}
        orig = model._raw_scores

        def counting(*a, **kw):
            calls["n"] += 1
            return orig(*a, **kw)

        model._raw_scores = counting
        proba = model.predict_proba(Xq)
        pred = model.predict(Xq)
        assert calls["n"] == 1  # second call served from the cache
        assert np.array_equal(pred, model.classes_[np.argmax(proba, axis=1)])

    def test_cache_invalidated_on_refit(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, y_cls)
        first = model.decision_function(Xq)
        model.fit(X[:800], y_cls[:800])
        second = model.decision_function(Xq)
        assert first.shape == second.shape
        assert not np.array_equal(first, second)

    def test_distinct_arrays_not_conflated(self, data):
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, y_cls)
        a = model.decision_function(Xq)
        other = Xq + 1.0
        b = model.decision_function(other)
        assert not np.array_equal(a, b)

    def test_inplace_mutation_invalidates_cache(self, data):
        """Reusing one buffer for different batches must not serve stale scores."""
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, y_cls)
        buf = Xq.copy()
        first = model.decision_function(buf)
        buf[:] = Xq + 1.0  # same object, new contents
        second = model.decision_function(buf)
        assert not np.array_equal(first, second)
        assert np.array_equal(second, model._decision_function_legacy(Xq + 1.0))

    def test_sum_preserving_mutation_invalidates_cache(self, data):
        """A row swap keeps np.sum(X) exact — the fingerprint must still see it."""
        X, y_cls, _, Xq = data
        model = GBTClassifier(n_rounds=3).fit(X, y_cls)
        buf = Xq.copy()
        first = model.decision_function(buf)
        buf[[0, 1]] = buf[[1, 0]]  # same object, same sum, new row order
        second = model.decision_function(buf)
        assert np.array_equal(second[0], first[1])
        assert np.array_equal(second[1], first[0])
