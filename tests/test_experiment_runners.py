"""Figure/table runners exercised on a small cluster (fast versions)."""

import numpy as np
import pytest

from repro.analysis import (
    fig4_oracle_density,
    fig11_true_category,
    fig15_sensitivity,
    fig16_act_dynamics,
    table4_category_count,
)
from repro.core import prepare_cluster


@pytest.fixture(scope="module")
def cluster(two_week_trace):
    return prepare_cluster(two_week_trace)


class TestFig4Runner:
    def test_oracle_admissions_structure(self, cluster):
        result = fig4_oracle_density(cluster, quotas=(0.01, 0.1))
        savings = result["tco_savings"]
        for q, admitted in result["admitted"].items():
            assert admitted.shape == (len(cluster.test),)
            assert not admitted[savings < 0].any()
        assert result["admitted"][0.01].sum() <= result["admitted"][0.1].sum()


class TestFig11Runner:
    def test_two_series_produced(self, cluster):
        out = fig11_true_category(cluster, quotas=(0.05, 0.5))
        assert set(out) == {"Predicted category", "True category"}
        for series in out.values():
            assert set(series) == {0.05, 0.5}


class TestFig15Runner:
    def test_band_structure(self, cluster):
        out = fig15_sensitivity(
            cluster,
            quotas=(0.05, 0.5),
            tolerances=((0.01, 0.15), (0.05, 0.25)),
            windows=(900.0,),
            intervals=(900.0, 1800.0),
        )
        assert out["curves"].shape == (4, 2)
        assert (out["lower"] <= out["upper"]).all()
        assert len(out["combos"]) == 4


class TestFig16Runner:
    def test_trajectories_recorded(self, cluster):
        out = fig16_act_dynamics(cluster, quotas=(0.001, 0.5))
        for q, traj in out.items():
            assert len(traj) > 0
            for event in traj:
                assert 1 <= event.act
                assert 0.0 <= event.spillover <= 1.0

    def test_scarce_quota_higher_threshold(self, cluster):
        out = fig16_act_dynamics(cluster, quotas=(0.0001, 0.9))
        mean_act = {
            q: np.mean([e.act for e in traj]) for q, traj in out.items()
        }
        assert mean_act[0.0001] >= mean_act[0.9]


class TestTable4Runner:
    def test_accuracy_decreases_with_n(self, cluster):
        out = table4_category_count(cluster, category_counts=(2, 8), quota=0.1)
        assert out[2]["top1_accuracy"] >= out[8]["top1_accuracy"] - 0.05
        for n in (2, 8):
            assert np.isfinite(out[n]["tco_savings_pct"])
