"""Cost-model edge cases and cross-module consistency checks."""

import numpy as np
import pytest

from repro.cost import (
    DEFAULT_RATES,
    CostRates,
    cumulative_tcio,
    tcio_rate,
    tco_savings,
)
from repro.storage.devices import SsdSpec, wearout_rate_from_spec
from repro.units import GIB, HOUR, TIB


class TestRateConsistency:
    def test_default_wearout_near_device_derived(self):
        """DEFAULT_RATES.ssd_wearout_rate should be within an order of
        magnitude of what a plausible drive spec implies."""
        derived = wearout_rate_from_spec(SsdSpec())  # 200 cost / 1200 TiB
        ratio = DEFAULT_RATES.ssd_wearout_rate / derived
        assert 0.01 < ratio < 10.0

    def test_tcio_invariant_to_op_batching(self):
        """Grouped writes: op count depends on bytes, not on how the
        application split them."""
        a = tcio_rate(read_ops=0.0, write_bytes=100 * GIB, duration=HOUR)
        b = tcio_rate(read_ops=0.0, write_bytes=100 * GIB, duration=HOUR)
        assert a == b


class TestSavingsEdges:
    def test_zero_job_zero_savings_components(self):
        s = tco_savings(size=0.0, duration=0.0, total_bytes=0.0, write_bytes=0.0, tcio=0.0)
        assert s == 0.0

    def test_savings_decreasing_in_size(self):
        """Bigger footprint = more SSD capacity premium = less savings."""
        common = dict(duration=HOUR, total_bytes=10 * GIB, write_bytes=5 * GIB, tcio=1.0)
        small = tco_savings(size=1 * GIB, **common)
        large = tco_savings(size=1 * TIB, **common)
        assert small > large

    def test_savings_decreasing_in_writes(self):
        """More writes = more wearout = less savings (fixed TCIO)."""
        common = dict(size=1 * GIB, duration=HOUR, total_bytes=10 * GIB, tcio=1.0)
        light = tco_savings(write_bytes=1 * GIB, **common)
        heavy = tco_savings(write_bytes=100 * GIB, **common)
        assert light > heavy

    def test_vectorized_matches_scalar(self):
        sizes = np.array([1 * GIB, 2 * GIB])
        out = tco_savings(
            size=sizes,
            duration=np.array([HOUR, HOUR]),
            total_bytes=np.array([3 * GIB, 3 * GIB]),
            write_bytes=np.array([1 * GIB, 1 * GIB]),
            tcio=np.array([1.0, 1.0]),
        )
        scalar0 = tco_savings(1 * GIB, HOUR, 3 * GIB, 1 * GIB, 1.0)
        assert out[0] == pytest.approx(scalar0)


class TestCumulativeTcioEdges:
    def test_vectorized(self):
        rates = np.array([1.0, 2.0])
        arrivals = np.array([0.0, 100.0])
        ends = np.array([50.0, 200.0])
        out = cumulative_tcio(rates, arrivals, ends, t=150.0)
        assert out[0] == pytest.approx(50.0)  # clipped at end
        assert out[1] == pytest.approx(100.0)  # 2.0 * 50s elapsed

    def test_exactly_at_end(self):
        assert cumulative_tcio(1.0, 0.0, 100.0, t=100.0) == pytest.approx(100.0)


class TestCustomRates:
    def test_free_ssd_always_wins_for_hot_jobs(self):
        rates = CostRates(
            ssd_byte_rate=0.0, ssd_server_rate=0.0, ssd_wearout_rate=0.0
        )
        s = tco_savings(
            size=1 * TIB, duration=HOUR, total_bytes=1 * GIB,
            write_bytes=0.5 * GIB, tcio=0.5, rates=rates,
        )
        assert s > 0

    def test_infinitely_expensive_ssd_never_wins(self):
        rates = CostRates(ssd_byte_rate=1.0)  # absurd per-byte-second rate
        s = tco_savings(
            size=1 * GIB, duration=HOUR, total_bytes=100 * GIB,
            write_bytes=1 * GIB, tcio=100.0, rates=rates,
        )
        assert s < 0
