"""Sharded caching-server simulation."""

import numpy as np
import pytest

from repro.storage import (
    Decision,
    PlacementPolicy,
    assign_shards,
    simulate,
    simulate_sharded,
)
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


class AlwaysSSD(PlacementPolicy):
    name = "always-ssd"

    def decide(self, job_index, ctx):
        return Decision(want_ssd=True)


class TestAssignShards:
    def test_pipeline_locality(self, small_trace):
        shards = assign_shards(small_trace, 4)
        by_pipe = {}
        for s, p in zip(shards, small_trace.pipelines):
            by_pipe.setdefault(p, set()).add(int(s))
        assert all(len(v) == 1 for v in by_pipe.values())

    def test_range(self, small_trace):
        shards = assign_shards(small_trace, 4)
        assert shards.min() >= 0 and shards.max() < 4

    def test_rejects_zero_shards(self, small_trace):
        with pytest.raises(ValueError):
            assign_shards(small_trace, 0)


class TestSimulateSharded:
    def test_single_shard_matches_global(self, small_trace):
        cap = 0.05 * small_trace.peak_ssd_usage()
        a = simulate(small_trace, AlwaysSSD(), cap)
        b = simulate_sharded(small_trace, AlwaysSSD(), cap, n_shards=1)
        assert b.realized_tco == pytest.approx(a.realized_tco)
        assert b.n_spilled == a.n_spilled

    def test_fragmentation_hurts(self, small_trace):
        """Splitting the same capacity across shards can only lose."""
        cap = 0.05 * small_trace.peak_ssd_usage()
        whole = simulate_sharded(small_trace, AlwaysSSD(), cap, n_shards=1)
        split = simulate_sharded(small_trace, AlwaysSSD(), cap, n_shards=8)
        assert split.tcio_savings_pct <= whole.tcio_savings_pct + 1e-9

    def test_shard_capacity_is_local(self):
        # Two pipelines hashing to different shards; each shard holds
        # exactly one of the two 5 GiB jobs under a 10 GiB total.
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, size=6 * GIB, pipeline="pa"),
            make_job(1, arrival=1.0, duration=100.0, size=6 * GIB, pipeline="pb"),
        ]
        trace = Trace(jobs)
        shards = assign_shards(trace, 2)
        res = simulate_sharded(trace, AlwaysSSD(), capacity=12 * GIB, n_shards=2)
        if shards[0] != shards[1]:
            # Different shards: each job fits in its 6 GiB slice.
            assert res.n_spilled == 0
        else:
            # Same shard: the second job spills even though the other
            # shard is idle — the fragmentation effect.
            assert res.n_spilled == 1

    def test_capacity_validation(self, small_trace):
        with pytest.raises(ValueError):
            simulate_sharded(small_trace, AlwaysSSD(), -1.0, n_shards=2)

    def test_adaptive_policy_works_sharded(self, small_trace):
        from repro.core import AdaptiveCategoryPolicy, hash_categories

        cap = 0.02 * small_trace.peak_ssd_usage()
        policy = AdaptiveCategoryPolicy(hash_categories(small_trace, 8), 8)
        res = simulate_sharded(small_trace, policy, cap, n_shards=4)
        assert res.n_jobs == len(small_trace)
        assert len(policy.trajectory) > 0
