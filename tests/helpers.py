"""Shared test helpers, importable as ``from helpers import make_job``.

Lives outside ``conftest.py`` so the module name can never collide with
``benchmarks/conftest.py`` (both directories previously defined a
top-level ``conftest`` module; whichever was imported first shadowed the
other and broke collection).
"""

from __future__ import annotations

from repro.units import GIB
from repro.workloads import ShuffleJob

__all__ = ["make_job"]


def make_job(
    job_id: int = 0,
    arrival: float = 0.0,
    duration: float = 600.0,
    size: float = 1 * GIB,
    read_ops: float = 10_000.0,
    read_bytes: float = 2 * GIB,
    write_bytes: float = 1 * GIB,
    pipeline: str = "pipe0",
    user: str = "user0",
    cluster: str = "T",
    archetype: str = "dbquery",
    step: int = 0,
) -> ShuffleJob:
    """A hand-built job with sensible defaults for unit tests."""
    return ShuffleJob(
        job_id=job_id,
        cluster=cluster,
        user=user,
        pipeline=pipeline,
        archetype=archetype,
        arrival=arrival,
        duration=duration,
        size=size,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        read_ops=read_ops,
        metadata={
            "build_target_name": f"//team/{archetype}/buildmanager:bin",
            "execution_name": f"com.team.{archetype}.Main",
            "pipeline_name": pipeline,
            "step_name": f"s{step}-open-shuffle{step}",
            "user_name": f"GroupByKey-{step}",
        },
        resources={
            "bucket_sizing_initial_num_stripes": 4.0,
            "bucket_sizing_num_shards": 32.0,
            "bucket_sizing_num_worker_threads": 4.0,
            "bucket_sizing_num_workers": 16.0,
            "initial_num_buckets": 64.0,
            "num_buckets": 64.0,
            "records_written": 1e6,
            "requested_num_shards": 32.0,
        },
    )
