"""CSV trace ingestion."""

import numpy as np
import pytest

from repro.workloads import load_csv_trace, save_csv_trace


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv_trace(small_trace, path)
        loaded = load_csv_trace(path)
        assert len(loaded) == len(small_trace)
        assert np.allclose(loaded.arrivals, small_trace.arrivals)
        assert np.allclose(loaded.read_ops, small_trace.read_ops)
        assert loaded[0].pipeline == small_trace[0].pipeline
        assert loaded[0].metadata == small_trace[0].metadata
        assert loaded[0].resources == small_trace[0].resources

    def test_costs_survive_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv_trace(small_trace, path)
        loaded = load_csv_trace(path)
        assert np.allclose(loaded.costs().savings, small_trace.costs().savings)


class TestLoadValidation:
    def _write(self, tmp_path, text):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return path

    def test_minimal_schema(self, tmp_path):
        path = self._write(
            tmp_path,
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
            "0,0.0,60.0,1e9,2e9,1e9,5000\n",
        )
        trace = load_csv_trace(path)
        assert len(trace) == 1
        assert trace[0].pipeline == "pipeline0"  # default
        assert trace[0].size == 1e9

    def test_missing_column_rejected(self, tmp_path):
        path = self._write(tmp_path, "job_id,arrival\n0,0\n")
        with pytest.raises(ValueError, match="missing required columns"):
            load_csv_trace(path)

    def test_bad_numeric_reports_row(self, tmp_path):
        path = self._write(
            tmp_path,
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
            "0,0.0,60.0,1e9,2e9,1e9,5000\n"
            "1,oops,60.0,1e9,2e9,1e9,5000\n",
        )
        with pytest.raises(ValueError, match="row 1"):
            load_csv_trace(path)

    def test_meta_and_resource_columns(self, tmp_path):
        path = self._write(
            tmp_path,
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops,"
            "meta.step_name,resource.num_workers\n"
            "0,0.0,60.0,1e9,2e9,1e9,5000,s0-shuffle0,16\n",
        )
        trace = load_csv_trace(path)
        assert trace[0].metadata["step_name"] == "s0-shuffle0"
        assert trace[0].resources["num_workers"] == 16.0

    def test_empty_file_rejected(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(ValueError, match="empty"):
            load_csv_trace(path)

    def test_loaded_trace_runs_through_simulator(self, tmp_path):
        from repro.baselines import FirstFitPolicy
        from repro.storage import simulate

        path = self._write(
            tmp_path,
            "job_id,arrival,duration,size,read_bytes,write_bytes,read_ops\n"
            + "\n".join(
                f"{i},{i * 10.0},60.0,1e9,2e9,1e9,{1000 * (i + 1)}"
                for i in range(20)
            ),
        )
        trace = load_csv_trace(path)
        res = simulate(trace, FirstFitPolicy(), capacity=5e9)
        assert res.n_jobs == 20
