"""Oracle ILP, greedy approximation, and headroom analysis."""

import numpy as np
import pytest

from repro.oracle import (
    greedy_placement,
    headroom_analysis,
    oracle_objective,
    oracle_placement,
)
from repro.storage import FixedPolicy, simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


def hot_job(i, arrival, savings_scale=1.0, size=1 * GIB, duration=100.0):
    return make_job(
        i, arrival=arrival, duration=duration, size=size,
        read_ops=300_000.0 * savings_scale,
    )


def cold_job(i, arrival, size=10 * GIB, duration=50_000.0):
    return make_job(
        i, arrival=arrival, duration=duration, size=size,
        read_ops=5.0, write_bytes=2 * size,
    )


class TestOracleObjective:
    def test_tco_matches_savings(self, handmade_trace):
        from repro.cost import DEFAULT_RATES

        coef = oracle_objective(handmade_trace, "tco", DEFAULT_RATES)
        assert np.allclose(coef, handmade_trace.costs().savings)

    def test_tcio_nonnegative(self, handmade_trace):
        from repro.cost import DEFAULT_RATES

        coef = oracle_objective(handmade_trace, "tcio", DEFAULT_RATES)
        assert (coef >= 0).all()

    def test_unknown_objective_raises(self, handmade_trace):
        from repro.cost import DEFAULT_RATES

        with pytest.raises(ValueError):
            oracle_objective(handmade_trace, "latency", DEFAULT_RATES)


class TestOraclePlacement:
    def test_respects_capacity_profile(self):
        # Three overlapping 1 GiB hot jobs, capacity for two.
        jobs = [hot_job(i, arrival=float(i), duration=1000.0) for i in range(3)]
        trace = Trace(jobs)
        res = oracle_placement(trace, capacity=2 * GIB)
        assert res.decisions.sum() == 2

    def test_prefers_higher_savings(self):
        jobs = [
            hot_job(0, 0.0, savings_scale=0.5, duration=1000.0),
            hot_job(1, 1.0, savings_scale=5.0, duration=1000.0),
        ]
        res = oracle_placement(Trace(jobs), capacity=1 * GIB)
        assert not res.decisions[0]
        assert res.decisions[1]

    def test_never_admits_negative_savings(self, small_trace):
        savings = small_trace.costs().savings
        res = oracle_placement(small_trace, capacity=1e18, max_milp_jobs=50)
        assert not res.decisions[savings <= 0].any()

    def test_infinite_capacity_admits_all_positive(self, small_trace):
        savings = small_trace.costs().savings
        res = oracle_placement(small_trace, capacity=1e18, max_milp_jobs=50)
        # Greedy fallback with ample capacity still takes every winner.
        assert res.decisions.sum() == (savings > 0).sum()

    def test_zero_capacity_trivial(self, small_trace):
        res = oracle_placement(small_trace, capacity=0.0)
        assert res.method == "trivial"
        assert not res.decisions.any()

    def test_oversized_jobs_dropped(self):
        jobs = [hot_job(0, 0.0, size=100 * GIB)]
        res = oracle_placement(Trace(jobs), capacity=1 * GIB)
        assert not res.decisions.any()

    def test_milp_at_least_greedy(self):
        rng = np.random.default_rng(1)
        jobs = [
            hot_job(
                i,
                arrival=float(rng.uniform(0, 5000)),
                savings_scale=float(rng.uniform(0.2, 3.0)),
                size=float(rng.uniform(0.5, 4) * GIB),
                duration=float(rng.uniform(50, 2000)),
            )
            for i in range(120)
        ]
        trace = Trace(jobs)
        cap = 6 * GIB
        milp_res = oracle_placement(trace, cap, max_milp_jobs=1000, time_limit=20.0)
        greedy_res = oracle_placement(trace, cap, max_milp_jobs=1)
        assert milp_res.method == "milp"
        assert greedy_res.method == "greedy"
        assert milp_res.objective_value >= greedy_res.objective_value - 1e-9

    def test_simulated_oracle_has_no_spill(self, small_trace):
        cap = 0.05 * small_trace.peak_ssd_usage()
        res = oracle_placement(small_trace, cap, max_milp_jobs=50)
        sim = simulate(small_trace, FixedPolicy(res.decisions, "oracle"), cap)
        assert sim.n_spilled == 0

    def test_negative_capacity_raises(self, small_trace):
        with pytest.raises(ValueError):
            oracle_placement(small_trace, capacity=-1.0)


class TestGreedy:
    def test_empty_input(self):
        picked, val = greedy_placement(
            np.array([]), np.array([]), np.array([]), np.array([]), 100.0
        )
        assert len(picked) == 0 and val == 0.0

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(2)
        n = 200
        arrivals = rng.uniform(0, 1000, n)
        ends = arrivals + rng.uniform(10, 500, n)
        sizes = rng.uniform(1, 10, n)
        values = rng.uniform(0.1, 5, n)
        cap = 20.0
        picked, _ = greedy_placement(arrivals, ends, sizes, values, cap)
        chosen = set(picked.tolist())
        for t in arrivals:
            usage = sum(
                sizes[i]
                for i in chosen
                if arrivals[i] <= t < ends[i]
            )
            assert usage <= cap + 1e-9

    def test_value_accumulates(self):
        arrivals = np.array([0.0, 100.0])
        ends = np.array([50.0, 150.0])
        sizes = np.array([1.0, 1.0])
        values = np.array([2.0, 3.0])
        picked, val = greedy_placement(arrivals, ends, sizes, values, 1.0)
        assert len(picked) == 2
        assert val == pytest.approx(5.0)


class TestHeadroom:
    def test_oracle_beats_heuristic(self, two_week_trace):
        from repro.workloads import week_split

        train, _, test, _ = week_split(two_week_trace)
        result = headroom_analysis(
            train, test, quota_fraction=0.01, max_milp_jobs=500
        )
        assert result.oracle.tco_savings_pct >= result.heuristic.tco_savings_pct
        assert result.savings_ratio >= 1.0
