"""End-to-end BYOM pipeline: train offline, deploy online."""

import numpy as np
import pytest

from repro.config import AdaptiveParams, ModelParams
from repro.core import ByomPipeline, prepare_cluster


@pytest.fixture(scope="module")
def cluster(two_week_trace):
    return prepare_cluster(two_week_trace)


@pytest.fixture(scope="module")
def pipeline(cluster):
    params = ModelParams(n_categories=8, n_rounds=6, max_depth=4)
    return ByomPipeline(params).train(cluster.train, cluster.features_train)


class TestPrepareCluster:
    def test_split_is_consistent(self, cluster, two_week_trace):
        assert len(cluster.train) + len(cluster.test) == len(two_week_trace)
        assert len(cluster.features_train) == len(cluster.train)
        assert len(cluster.features_test) == len(cluster.test)

    def test_peak_is_test_week(self, cluster):
        assert cluster.peak_ssd_usage == pytest.approx(cluster.test.peak_ssd_usage())

    def test_test_jobs_inherit_train_history(self, cluster):
        # Features extracted on the full trace: an early test-week job of
        # a pipeline seen in week 1 must have observed history.
        a_cols = cluster.features_test.group_columns("A")
        has_history = (cluster.features_test.X[:, a_cols] != 0).any(axis=1)
        train_pipelines = set(cluster.train.pipelines)
        carried = [
            h
            for h, p in zip(has_history, cluster.test.pipelines)
            if p in train_pipelines
        ]
        assert np.mean(carried) > 0.9


class TestByomPipeline:
    def test_deploy_returns_result(self, pipeline, cluster):
        res = pipeline.deploy(cluster.test, cluster.features_test, 0.05)
        assert res.n_jobs == len(cluster.test)
        assert res.policy_name == "Adaptive Ranking"

    def test_positive_savings_at_moderate_quota(self, pipeline, cluster):
        res = pipeline.deploy(
            cluster.test, cluster.features_test, 0.1, cluster.peak_ssd_usage
        )
        assert res.tco_savings_pct > 0

    def test_zero_quota_zero_savings(self, pipeline, cluster):
        res = pipeline.deploy(
            cluster.test, cluster.features_test, 0.0, cluster.peak_ssd_usage
        )
        assert res.tco_savings_pct == pytest.approx(0.0)
        assert res.tcio_savings_pct == pytest.approx(0.0)

    def test_monotone_tcio_with_quota(self, pipeline, cluster):
        """More SSD can only move more I/O off HDD (approximately)."""
        small = pipeline.deploy(
            cluster.test, cluster.features_test, 0.01, cluster.peak_ssd_usage
        )
        large = pipeline.deploy(
            cluster.test, cluster.features_test, 0.5, cluster.peak_ssd_usage
        )
        assert large.tcio_savings_pct >= small.tcio_savings_pct - 1.0

    def test_deploy_skewed_shards(self, pipeline, cluster):
        res = pipeline.deploy(
            cluster.test,
            cluster.features_test,
            0.05,
            cluster.peak_ssd_usage,
            n_shards=4,
            shard_weights=(2.0, 1.0, 1.0, 0.5),
            per_shard_act=True,
        )
        assert res.n_shards == 4
        total = 0.05 * cluster.peak_ssd_usage
        np.testing.assert_allclose(
            res.lane_capacities, total * np.array([2.0, 1.0, 1.0, 0.5]) / 4.5
        )
        assert res.capacity == pytest.approx(total)

    def test_deploy_rejects_mismatched_shard_weights(self, pipeline, cluster):
        # Weights must match the shard count — in particular they are
        # not silently dropped when n_shards is left at 1.
        with pytest.raises(ValueError):
            pipeline.deploy(
                cluster.test,
                cluster.features_test,
                0.05,
                cluster.peak_ssd_usage,
                shard_weights=(2.0, 1.0, 1.0, 0.5),
            )

    def test_true_category_policy_uses_ground_truth(self, pipeline, cluster):
        policy = pipeline.true_category_policy(cluster.test)
        labels = pipeline.model.labels_for(cluster.test)
        assert np.array_equal(policy.categories, labels)

    def test_adaptive_params_propagate(self, cluster):
        params = AdaptiveParams(decision_interval=123.0)
        pipe = ByomPipeline(
            ModelParams(n_categories=4, n_rounds=2), params
        ).train(cluster.train, cluster.features_train)
        policy = pipe.make_policy(cluster.test, cluster.features_test)
        assert policy.params.decision_interval == 123.0
