"""Prototype deployment emulation (Figures 5, 13, 14)."""

import numpy as np
import pytest

from repro.config import ModelParams
from repro.prototype import (
    application_runtime_savings,
    build_mixed_workload,
    build_prototype_workload,
    run_prototype,
)

FAST_MODEL = ModelParams(n_categories=8, n_rounds=5, max_depth=4)


@pytest.fixture(scope="module")
def proto():
    return build_prototype_workload(seed=1)


@pytest.fixture(scope="module")
def mixed():
    return build_mixed_workload(seed=2)


class TestWorkloadBuilders:
    def test_prototype_is_all_framework(self, proto):
        assert proto.is_framework.all()
        assert len(proto.trace) > 200

    def test_prototype_has_both_orientations(self, proto):
        from repro.workloads import ARCHETYPES

        suited = {ARCHETYPES[j.archetype].ssd_suited for j in proto.trace}
        assert suited == {True, False}

    def test_mixed_contains_both_kinds(self, mixed):
        assert mixed.is_framework.any()
        assert (~mixed.is_framework).any()

    def test_mixed_footprint_roughly_balanced(self, mixed):
        fw = mixed.trace.sizes[mixed.is_framework].sum()
        nfw = mixed.trace.sizes[~mixed.is_framework].sum()
        assert 0.5 < fw / nfw < 2.0

    def test_mixed_job_ids_unique(self, mixed):
        ids = [j.job_id for j in mixed.trace]
        assert len(set(ids)) == len(ids)


class TestRunPrototype:
    def test_adaptive_beats_firstfit_at_tight_quota(self, proto):
        result = run_prototype(proto, quota_fraction=0.01, model_params=FAST_MODEL)
        assert result.adaptive.tco_savings_pct > result.firstfit.tco_savings_pct
        assert result.tco_improvement > 1.0

    def test_quota_recorded(self, proto):
        result = run_prototype(proto, quota_fraction=0.2, model_params=FAST_MODEL)
        assert result.quota_fraction == 0.2


class TestRuntimeModel:
    def test_all_hdd_no_savings(self, proto):
        savings = application_runtime_savings(
            proto.trace, np.zeros(len(proto.trace))
        )
        assert np.allclose(savings, 0.0)

    def test_no_regressions(self, proto):
        rng = np.random.default_rng(0)
        frac = rng.uniform(0, 1, len(proto.trace))
        savings = application_runtime_savings(proto.trace, frac)
        assert (savings >= 0.0).all()

    def test_full_ssd_saves_more_than_partial(self, proto):
        full = application_runtime_savings(proto.trace, np.ones(len(proto.trace)))
        half = application_runtime_savings(proto.trace, np.full(len(proto.trace), 0.5))
        assert full.mean() > half.mean()

    def test_misaligned_raises(self, proto):
        with pytest.raises(ValueError):
            application_runtime_savings(proto.trace, np.zeros(3))
