"""Durability: WAL framing, checkpoint + replay recovery, crash kill test.

The recovery contract: ``PlacementService.recover(checkpoint, wal)``
replays the WAL suffix past the checkpoint's ``wal_seq`` anchor through
the normal entry points, so a service that crashes mid-stream and
recovers produces results **bit-identical** to the uninterrupted run —
same decisions, same cost roll-up, same per-shard counters, same ACT
positions.  This holds for every crash point, every batched policy
family, both engines, and any shard count; a sweep below pins it.

``TestCrashKill`` proves the claim end to end by killing a real serving
subprocess mid-stream (injected ``crash`` fault → ``os._exit(137)``)
and recovering from its checkpoint + WAL in a fresh process.
"""

import os
import pickle
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro.serve import PlacementService, WalCorruption, WriteAheadLog
from repro.serve.wal import job_from_record, job_to_record

from helpers import make_job
from test_serve_service import (
    assert_bit_identical,
    make_policy_builders,
    random_trace,
)


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "svc.wal"
        recs = [
            {"op": "submit", "arrival": 1.5, "size": 3.0e9},
            {"op": "complete", "job_id": "a", "time": None},
            {"op": "shock", "caps": [1.0, 0.25e9]},
        ]
        with WriteAheadLog(path) as wal:
            for i, r in enumerate(recs):
                assert wal.append(r) == i
            assert wal.seq == len(recs)
            assert len(wal) == len(recs)
        assert list(WriteAheadLog.read(path)) == list(enumerate(recs))
        assert list(WriteAheadLog.read(path, start=2)) == [(2, recs[2])]

    def test_floats_survive_exactly(self, tmp_path):
        """json round-trips float64 bit-exactly (repr-based encoding)."""
        path = tmp_path / "f.wal"
        vals = [0.1, 1 / 3, 2.5e9 * (2 / 7), np.float64(np.pi).item()]
        with WriteAheadLog(path) as wal:
            wal.append({"op": "x", "vals": vals})
        ((_, rec),) = WriteAheadLog.read(path)
        assert rec["vals"] == vals  # == is bitwise for floats here

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "seq.wal"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "a"})
        with WriteAheadLog(path) as wal:
            assert wal.seq == 1
            assert wal.append({"op": "b"}) == 1
        assert [seq for seq, _ in WriteAheadLog.read(path)] == [0, 1]

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "torn.wal"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "a"})
            wal.append({"op": "b"})
        with open(path, "ab") as fh:
            fh.write(b'deadbeef {"op": "torn", "x":')  # crash mid-write
        # Reads stop at the first bad record...
        assert [r["op"] for _, r in WriteAheadLog.read(path)] == ["a", "b"]
        # ...and opening for append truncates the torn bytes, so the
        # next record lands at the right offset with the right seq.
        with WriteAheadLog(path) as wal:
            assert wal.seq == 2
            wal.append({"op": "c"})
        assert [r["op"] for _, r in WriteAheadLog.read(path)] == ["a", "b", "c"]

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "crc.wal"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "a"})
            wal.append({"op": "b"})
        raw = path.read_bytes().splitlines(keepends=True)
        # Flip a payload byte of record 1 without touching its CRC.
        raw[1] = raw[1].replace(b'"b"', b'"x"')
        path.write_bytes(b"".join(raw))
        assert [r["op"] for _, r in WriteAheadLog.read(path)] == ["a"]

    def test_crc_frame_format(self, tmp_path):
        path = tmp_path / "frame.wal"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "a"})
        line = path.read_bytes()
        crc_hex, payload = line[:8], line[9:-1]
        assert int(crc_hex, 16) == zlib.crc32(payload)

    def test_job_record_round_trip(self):
        job = make_job(7, arrival=123.5, pipeline="p9", user="u3", step=4)
        assert job_from_record(job_to_record(job)) == job


# Monotonic counters that must be identical between a recovered run and
# the uninterrupted reference (serve_wal_records_total is excluded: the
# reference run has no WAL).
METRIC_COUNTER_KEYS = (
    "serve_submitted_total", "serve_decided_total", "serve_chunks_total",
    "serve_forced_chunks_total", "serve_completions_total",
    "serve_duplicate_completes_total", "serve_stale_completes_total",
    "serve_shocks_total", "serve_evictions_total",
    "serve_evicted_bytes_total", "serve_degraded_jobs_total",
    "serve_degraded_intervals_total", "serve_categorizer_failures_total",
    "serve_ssd_requested_total", "serve_spilled_total",
    "serve_kernel_evictions_total", "serve_scalar_fallback_total",
)


def _drive(svc_or_inj, trace, lo, hi, *, batch, complete_every, shock_at):
    """Feed ``trace[lo:hi]`` deterministically: micro-batches via
    ``submit_jobs`` plus scripted completes and one capacity shock, so
    interrupted and uninterrupted runs consume the identical stream."""
    jobs = trace.jobs
    for start in range(lo, hi, batch):
        stop = min(start + batch, hi)
        svc_or_inj.submit_jobs(list(jobs[start:stop]))
        if shock_at is not None and start <= shock_at < stop:
            svc_or_inj.apply_shock(scale=0.5)
            svc_or_inj.apply_shock(scale=2.0)
        for k in range(start, stop):
            if k % complete_every == 0:
                svc_or_inj.complete(jobs[k].job_id)


class TestRecoveryBitIdentity:
    """Crash point x policy x engine x shard count: recovery is exact."""

    CAP = 8 * 2**30

    def _run_uninterrupted(self, build, trace, mode, n_shards, shock_at):
        svc = PlacementService(build(), self.CAP, n_shards, mode=mode)
        svc.open(trace)
        _drive(svc, trace, 0, len(trace), batch=17,
               complete_every=13, shock_at=shock_at)
        res = svc.result()
        return res, svc

    def _run_with_crash(self, build, trace, mode, n_shards, shock_at,
                        crash_at, tmp_path, tag):
        wal_path = tmp_path / f"{tag}.wal"
        ckpt_path = tmp_path / f"{tag}.ckpt"
        svc = PlacementService(
            build(), self.CAP, n_shards, mode=mode, wal=str(wal_path)
        )
        svc.open(trace)
        # Checkpoint strictly before the crash so a WAL suffix exists.
        ckpt_at = crash_at // 2
        _drive(svc, trace, 0, ckpt_at, batch=17,
               complete_every=13, shock_at=shock_at)
        svc.checkpoint(str(ckpt_path))
        _drive(svc, trace, ckpt_at, crash_at, batch=17,
               complete_every=13, shock_at=shock_at)
        svc.wal.close()  # "crash": the object is abandoned here

        rec = PlacementService.recover(str(ckpt_path), str(wal_path))
        assert rec.stats.n_submitted == crash_at
        _drive(rec, trace, crash_at, len(trace), batch=17,
               complete_every=13, shock_at=shock_at)
        res = rec.result()
        return res, rec

    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_sweep(self, mode, n_shards, tmp_path):
        trace = random_trace(11, n=240)
        builders = make_policy_builders(trace, 11)
        for name in ("adaptive", "firstfit", "fixed"):
            build = builders[name]
            for crash_at in (34, 170):
                shock_at = 100 if name != "fixed" else None
                off_res, off_svc = self._run_uninterrupted(
                    build, trace, mode, n_shards, shock_at
                )
                on_res, on_svc = self._run_with_crash(
                    build, trace, mode, n_shards, shock_at, crash_at,
                    tmp_path, f"{name}-{mode}-{n_shards}-{crash_at}",
                )
                label = f"{name} x {mode} x {n_shards} shards @ {crash_at}"
                assert_bit_identical(off_res, on_res, label)
                assert on_svc.stats.n_evicted == off_svc.stats.n_evicted, label
                assert on_svc.stats.n_shocks == off_svc.stats.n_shocks, label
                # The metrics surface continues across recovery: every
                # monotonic counter resumes from its checkpoint + WAL
                # replay value — no resets, no double counting.
                m_off, m_on = off_svc.metrics(), on_svc.metrics()
                for key in METRIC_COUNTER_KEYS:
                    assert m_on[key] == m_off[key], (label, key)
                cats_off = {k: v for k, v in m_off.items()
                            if k.startswith("serve_admitted_by_category")}
                cats_on = {k: v for k, v in m_on.items()
                           if k.startswith("serve_admitted_by_category")}
                assert cats_on == cats_off, label
                # Latency histogram *counts* replay exactly too (sums
                # are wall-clock and may differ).
                assert (m_on["serve_batch_seconds"]["count"]
                        == m_off["serve_batch_seconds"]["count"]), label
                # Per-shard counters and ACT positions survive recovery.
                off_p, on_p = off_svc.policy, on_svc.policy
                for attr in ("shard_ssd_requested", "shard_spills",
                             "act_lanes", "_req_mark"):
                    a, b = getattr(off_p, attr, None), getattr(on_p, attr, None)
                    if a is None or b is None:
                        assert a is None and b is None, (label, attr)
                    else:
                        np.testing.assert_array_equal(a, b, err_msg=f"{label} {attr}")
                if hasattr(off_p, "act"):
                    assert on_p.act == off_p.act, label

    def test_recovery_preserves_wal_stream(self, tmp_path):
        """A recovered service keeps logging: a second crash at a later
        point recovers again from the SAME wal (chained recovery)."""
        trace = random_trace(12, n=160)
        build = make_policy_builders(trace, 12)["adaptive"]
        wal, ckpt = str(tmp_path / "c.wal"), str(tmp_path / "c.ckpt")

        svc = PlacementService(build(), self.CAP, 4, mode="batch", wal=wal)
        svc.open(trace)
        _drive(svc, trace, 0, 40, batch=17, complete_every=13, shock_at=None)
        svc.checkpoint(ckpt)
        _drive(svc, trace, 40, 80, batch=17, complete_every=13, shock_at=60)
        svc.wal.close()

        r1 = PlacementService.recover(ckpt, wal)
        _drive(r1, trace, 80, 120, batch=17, complete_every=13, shock_at=None)
        r1.checkpoint(ckpt)
        r1.wal.close()

        r2 = PlacementService.recover(ckpt, wal)
        _drive(r2, trace, 120, 160, batch=17, complete_every=13, shock_at=None)
        got = r2.result()

        ref = PlacementService(build(), self.CAP, 4, mode="batch")
        ref.open(trace)
        for lo, hi, shock in ((0, 40, None), (40, 80, 60),
                              (80, 120, None), (120, 160, None)):
            _drive(ref, trace, lo, hi, batch=17, complete_every=13,
                   shock_at=shock)
        assert_bit_identical(ref.result(), got, "chained recovery")

    def test_snapshot_excludes_wal_handle(self, tmp_path):
        trace = random_trace(13, n=40)
        svc = PlacementService(
            make_policy_builders(trace, 13)["firstfit"](), self.CAP, 1,
            mode="batch", wal=str(tmp_path / "x.wal"),
        )
        svc.open(trace)
        svc.submit_jobs(list(trace.jobs[:20]))
        snap = svc.snapshot()
        # The snapshot pickles without the live file handle and restores
        # with wal=None (recover() reattaches the log explicitly).
        clone = PlacementService.restore(pickle.loads(pickle.dumps(snap)))
        assert clone.wal is None
        assert clone.stats.n_submitted == 20
        assert snap.wal_seq == svc.wal_seq

    def test_recover_rejects_unknown_record(self, tmp_path):
        trace = random_trace(14, n=20)
        wal, ckpt = str(tmp_path / "bad.wal"), str(tmp_path / "bad.ckpt")
        svc = PlacementService(
            make_policy_builders(trace, 14)["firstfit"](), self.CAP, 1,
            mode="batch", wal=wal,
        )
        svc.open(trace)
        svc.checkpoint(ckpt)
        svc.submit_jobs(list(trace.jobs[:10]))
        svc.wal.append({"op": "martian"})
        svc.wal.close()
        with pytest.raises(WalCorruption, match="martian"):
            PlacementService.recover(ckpt, wal)


class TestCrashKill:
    """Kill a real serving subprocess mid-stream, then recover."""

    def _cli(self, *argv, cwd):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) \
            + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
        )

    def _rollup(self, stdout):
        """The final cost/spill roll-up lines, which must match."""
        return [
            ln for ln in stdout.splitlines()
            if any(key in ln for key in ("TCO", "spilled", "chunks", "served"))
        ]

    def test_kill_and_recover_matches_uninterrupted(self, tmp_path):
        prefix = str(tmp_path / "trace")
        gen = self._cli(
            "generate", "--cluster", "0", "--weeks", "0.1",
            "--out", prefix, cwd=tmp_path,
        )
        assert gen.returncode == 0, gen.stderr

        ref = self._cli(
            "serve", "--trace", prefix, "--batch", "64", cwd=tmp_path
        )
        assert ref.returncode == 0, ref.stderr

        plan = tmp_path / "plan.json"
        plan.write_text('{"events": [{"at": 300, "kind": "crash"}]}')
        wal, ckpt = str(tmp_path / "s.wal"), str(tmp_path / "s.ckpt")
        crashed = self._cli(
            "serve", "--trace", prefix, "--batch", "64",
            "--wal", wal, "--checkpoint", ckpt, "--checkpoint-every", "2",
            "--fault-plan", str(plan), cwd=tmp_path,
        )
        assert crashed.returncode == 137, (crashed.stdout, crashed.stderr)
        assert os.path.exists(wal) and os.path.exists(ckpt)

        recovered = self._cli(
            "serve", "--trace", prefix, "--batch", "64",
            "--wal", wal, "--checkpoint", ckpt, "--recover", cwd=tmp_path,
        )
        assert recovered.returncode == 0, recovered.stderr
        assert "recovered from" in recovered.stdout
        # The roll-up filter includes the CLI's metrics line (it names
        # "chunks" and "spilled"), so recovered counters must equal the
        # uninterrupted run's counter for counter — no resets after the
        # crash, no double counting from the WAL replay.
        assert any("metrics:" in ln for ln in self._rollup(ref.stdout))
        assert self._rollup(recovered.stdout) == self._rollup(ref.stdout)
