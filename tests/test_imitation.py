"""Imitation-learning baseline: learns the oracle, fails to adapt."""

import numpy as np
import pytest

from repro.baselines import ImitationModel, ImitationPolicy
from repro.core import prepare_cluster
from repro.storage import simulate


@pytest.fixture(scope="module")
def cluster(two_week_trace):
    return prepare_cluster(two_week_trace)


@pytest.fixture(scope="module")
def model(cluster):
    return ImitationModel(
        train_quota_fraction=0.1, n_rounds=6, max_depth=4
    ).fit(cluster.train, cluster.features_train)


class TestImitationModel:
    def test_rejects_bad_quota(self):
        with pytest.raises(ValueError):
            ImitationModel(train_quota_fraction=0.0)
        with pytest.raises(ValueError):
            ImitationModel(train_quota_fraction=1.5)

    def test_predict_before_fit_raises(self, cluster):
        with pytest.raises(RuntimeError):
            ImitationModel().predict(cluster.features_test)

    def test_misaligned_fit_raises(self, cluster):
        with pytest.raises(ValueError):
            ImitationModel(n_rounds=2).fit(cluster.train, cluster.features_test)

    def test_predictions_binary(self, model, cluster):
        pred = model.predict(cluster.features_test)
        assert pred.dtype == bool
        assert pred.shape == (len(cluster.test),)

    def test_imitates_teacher_reasonably(self, model, cluster):
        """On training data the student should track the teacher."""
        from repro.oracle import oracle_placement

        cap = 0.1 * cluster.train.peak_ssd_usage()
        teacher = oracle_placement(
            cluster.train, cap, "tco", integrality=False
        ).ssd_fraction() > 0.5
        student = model.predict(cluster.features_train)
        agreement = (teacher == student).mean()
        assert agreement > 0.7


class TestImitationPolicy:
    def test_ignores_capacity_feedback(self, model, cluster):
        """The policy admits the same jobs at every capacity."""
        policy_a = ImitationPolicy(model, cluster.features_test)
        policy_b = ImitationPolicy(model, cluster.features_test)
        tiny = simulate(cluster.test, policy_a, capacity=1.0)
        huge = simulate(cluster.test, policy_b, capacity=1e18)
        assert tiny.n_ssd_requested == huge.n_ssd_requested

    def test_spills_under_tight_capacity(self, model, cluster):
        policy = ImitationPolicy(model, cluster.features_test)
        res = simulate(cluster.test, policy, capacity=1.0)
        if res.n_ssd_requested > 0:
            assert res.n_spilled == res.n_ssd_requested

    def test_misaligned_trace_raises(self, model, cluster, handmade_trace):
        policy = ImitationPolicy(model, cluster.features_test)
        with pytest.raises(ValueError):
            simulate(handmade_trace, policy, capacity=1e18)
