"""All ten default clusters must produce experiment-grade traces."""

import pytest

from repro.units import WEEK
from repro.workloads import (
    default_cluster_specs,
    generate_cluster_trace,
    validate_trace,
    week_split,
)


@pytest.mark.parametrize("index", range(10))
def test_default_cluster_validates(index):
    """Every cluster in the experiment suite has the structure the
    evaluation requires (savings mix, density spread)."""
    spec = default_cluster_specs(10)[index]
    spec = type(spec)(
        name=spec.name,
        archetype_weights=spec.archetype_weights,
        n_pipelines=8,  # smaller instance for test speed
        n_users=spec.n_users,
        seed=spec.seed,
    )
    trace = generate_cluster_trace(spec, duration=1 * WEEK)
    stats = validate_trace(trace)
    assert stats.n_jobs > 50


def test_both_weeks_have_jobs():
    spec = default_cluster_specs(10)[0]
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    train, _, test, _ = week_split(trace)
    assert len(train) > 500
    assert len(test) > 500
    # Week populations are within 3x of each other (no collapse).
    ratio = len(train) / len(test)
    assert 1 / 3 < ratio < 3
