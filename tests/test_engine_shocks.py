"""Dynamic topology: ``resize_lane``/``drop_lane`` accounting exactness.

The shock contract, at kernel level and through
``PlacementService.apply_shock``:

- capacity and free space move by the same delta, so
  ``used == capacity - free.sum()`` is invariant across any shock;
- free space never goes negative — shrinking below the resident
  footprint evicts latest-scheduled-release first until it fits;
- every eviction is counted as a spill AND in the eviction counters,
  and is reported to the caller so per-job tracking can retire;
- growth never evicts, and restoring a lane's old capacity is exact;
- evicted or completed jobs never double-free when their scheduled
  release later surfaces.
"""

import numpy as np
import pytest

from repro.baselines import FirstFitPolicy
from repro.core import AdaptiveCategoryPolicy
from repro.serve import PlacementService
from repro.storage.engine import ScalarKernel, _normalize_capacity
from repro.units import GIB

from helpers import make_job


def _kern(caps):
    lane_caps, total = _normalize_capacity(np.asarray(caps, dtype=float), len(caps))
    return ScalarKernel(lane_caps, total)


def _used(kern) -> float:
    return float(kern.capacity) - float(np.asarray(kern.free).sum())


class TestScalarKernelShocks:
    def test_grow_never_evicts(self):
        k = _kern([4 * GIB, 4 * GIB])
        k.admit(0, 0.0, 3 * GIB, 100.0, 0, True, None)
        used = _used(k)
        assert k.resize_lane(0, 10 * GIB) == []
        assert k.capacity == 14 * GIB
        assert k.free[0] == pytest.approx(7 * GIB)
        assert _used(k) == pytest.approx(used)
        assert k.n_evicted == 0

    def test_shrink_with_headroom_keeps_residents(self):
        k = _kern([10 * GIB, 10 * GIB])
        k.admit(0, 0.0, 2 * GIB, 100.0, 0, True, None)
        assert k.resize_lane(0, 5 * GIB) == []
        assert k.free[0] == pytest.approx(3 * GIB)
        assert (np.asarray(k.free) >= 0).all()
        assert _used(k) == pytest.approx(2 * GIB)

    def test_shrink_evicts_latest_release_first(self):
        k = _kern([10 * GIB, 10 * GIB])
        # Three residents on lane 0 with distinct scheduled releases.
        k.admit(0, 0.0, 3 * GIB, 100.0, 0, True, None)   # release 100
        k.admit(1, 0.0, 3 * GIB, 300.0, 0, True, None)   # release 300
        k.admit(2, 0.0, 3 * GIB, 200.0, 0, True, None)   # release 200
        evicted = k.resize_lane(0, 5 * GIB)
        # 9 GiB resident, 5 GiB lane: evict release-300 then release-200.
        assert [i for (_, i, _) in evicted] == [1, 2]
        assert k.free[0] == pytest.approx(2 * GIB)
        assert k.n_evicted == 2
        assert k.n_spilled == 2  # evictions are spills
        assert k.evicted_bytes == pytest.approx(6 * GIB)
        assert _used(k) == pytest.approx(3 * GIB)
        # The evicted releases are lazily skipped, never double-freed.
        k.release_until(1e9)
        assert k.free[0] == pytest.approx(5 * GIB)
        assert k.free[1] == pytest.approx(10 * GIB)

    def test_drop_lane_evicts_everything(self):
        k = _kern([10 * GIB, 10 * GIB])
        k.admit(0, 0.0, 4 * GIB, 100.0, 0, True, None)
        k.admit(1, 0.0, 4 * GIB, 200.0, 0, True, None)
        evicted = k.drop_lane(0)
        assert len(evicted) == 2
        assert k.lane_capacity[0] == 0.0
        assert k.free[0] == 0.0
        assert k.capacity == 10 * GIB
        assert _used(k) == pytest.approx(0.0)

    def test_cancelled_jobs_do_not_count_as_residents(self):
        k = _kern([10 * GIB])
        _, _, _, alloc, _ = k.admit(0, 0.0, 4 * GIB, 100.0, 0, True, None)
        k.admit(1, 0.0, 4 * GIB, 200.0, 0, True, None)
        k.cancel(0, 0, alloc)  # early completion frees job 0 now
        evicted = k.resize_lane(0, 3 * GIB)
        # Only job 1 is still resident; job 0 must not be re-evicted.
        assert [i for (_, i, _) in evicted] == [1]
        assert k.free[0] == pytest.approx(3 * GIB)

    def test_restore_is_exact(self):
        k = _kern([6 * GIB, 6 * GIB])
        k.admit(0, 0.0, 2 * GIB, 100.0, 1, True, None)
        k.drop_lane(1)
        k.resize_lane(1, 6 * GIB)
        assert k.lane_capacity[1] == 6 * GIB
        assert k.capacity == 12 * GIB
        # The evicted resident stays evicted; the lane comes back empty.
        assert k.free[1] == pytest.approx(6 * GIB)

    def test_validation(self):
        k = _kern([1 * GIB])
        with pytest.raises(ValueError, match="lane"):
            k.resize_lane(3, 1 * GIB)
        with pytest.raises(ValueError, match=">= 0"):
            k.resize_lane(0, -1.0)


class TestChunkKernelShocks:
    """Chunk-kernel shocks, driven through the batch-mode service."""

    def _service(self, caps, policy=None):
        svc = PlacementService(
            policy or FirstFitPolicy(), np.asarray(caps, dtype=float),
            len(caps), mode="batch",
        )
        return svc

    def _submit(self, svc, arrival, size, duration, pipeline="pipe0", job_id=None):
        return svc.submit(
            arrival=arrival, duration=duration, size=size,
            pipeline=pipeline, job_id=job_id,
        )

    def test_shrink_evicts_and_accounts(self):
        svc = self._service([10 * GIB] * 4)
        jobs = [make_job(i, arrival=float(i), duration=5000.0, size=2 * GIB,
                         pipeline=f"pipe{i}") for i in range(12)]
        svc.submit_jobs(jobs)
        svc.drain()
        kern = svc.kernel
        used_before = float(svc.capacity) - float(np.asarray(kern.free).sum())
        assert used_before > 0
        for lane in range(4):
            rep = svc.apply_shock(1 * GIB, lane=lane)
            assert (np.asarray(kern.free) >= 0.0).all()
            assert float(np.asarray(svc.lane_capacities).sum()) == pytest.approx(
                svc.capacity
            )
        assert svc.stats.n_evicted == kern.n_evicted
        assert kern.n_evicted > 0
        assert kern.n_spilled >= kern.n_evicted
        assert kern.evicted_bytes > 0

    def test_evicted_release_never_double_frees(self):
        svc = self._service([4 * GIB])
        self._submit(svc, 0.0, 4 * GIB, 1000.0, job_id="a")
        svc.drain()
        svc.apply_shock(0.0, lane=0)  # evicts the resident
        svc.apply_shock(4 * GIB, lane=0)  # restore
        # Advance time far past the evicted job's scheduled release: the
        # lane must hold exactly its capacity, not capacity + alloc.
        self._submit(svc, 5000.0, 1 * GIB, 10.0, job_id="b")
        svc.drain()
        free = float(np.asarray(svc.kernel.free).sum())
        assert free <= svc.capacity + 1e-6

    def test_completed_then_shock_does_not_re_evict(self):
        svc = self._service([4 * GIB])
        self._submit(svc, 0.0, 3 * GIB, 1000.0, job_id="a")
        svc.drain()
        assert svc.complete("a", time=1.0) is True
        rep = svc.apply_shock(1 * GIB, lane=0)
        # Nothing resident: the completed job's pending cancel pair nets
        # out instead of being evicted.
        assert rep.n_evicted == 0
        assert (np.asarray(svc.kernel.free) >= 0.0).all()
        assert float(svc.kernel.free[0]) == pytest.approx(1 * GIB)

    def test_eviction_purges_live_table(self):
        svc = self._service([4 * GIB])
        self._submit(svc, 0.0, 4 * GIB, 1000.0, job_id="a")
        svc.drain()
        rep = svc.apply_shock(0.0, lane=0)
        assert rep.n_evicted == 1
        # A complete for the evicted job is a counted no-op, not a free.
        assert svc.complete("a", time=2.0) is False
        assert float(svc.kernel.free[0]) == 0.0

    def test_shock_flushes_queued_decisions(self):
        from repro.storage import FixedPolicy

        svc = self._service([10 * GIB], policy=FixedPolicy(np.ones(8, dtype=bool)))
        for i in range(4):
            out = self._submit(svc, float(i), 1 * GIB, 100.0)
            assert out == []  # whole-trace chunk: everything queues
        rep = svc.apply_shock(5 * GIB, lane=0)
        assert rep.flushed == 4
        assert len(rep.decisions) == 4
        assert svc.pending == 0

    def test_scale_and_total_spellings(self):
        svc = self._service([8 * GIB, 4 * GIB])
        svc.apply_shock(scale=0.5)
        np.testing.assert_allclose(
            np.asarray(svc.lane_capacities), [4 * GIB, 2 * GIB]
        )
        svc.apply_shock(12 * GIB)  # scalar total: proportional
        np.testing.assert_allclose(
            np.asarray(svc.lane_capacities), [8 * GIB, 4 * GIB]
        )
        assert svc.capacity == pytest.approx(12 * GIB)
        with pytest.raises(ValueError, match="scale"):
            svc.apply_shock(1 * GIB, scale=0.5)
        with pytest.raises(ValueError, match="entries"):
            svc.apply_shock(np.ones(3))
        with pytest.raises(ValueError, match="lane"):
            svc.apply_shock(1 * GIB, lane=7)

    def test_shock_refires_shard_topology(self):
        cats = np.arange(40) % 6
        policy = AdaptiveCategoryPolicy(cats, 6, per_shard_act=True)
        jobs = [make_job(i, arrival=float(i), duration=100.0, size=1 * GIB,
                         pipeline=f"pipe{i % 7}") for i in range(40)]
        from repro.workloads import Trace

        trace = Trace(jobs, name="topo")
        svc = PlacementService(policy, 8 * GIB, 4, mode="batch")
        svc.open(trace)
        svc.submit_jobs(jobs[:20])
        svc.drain()
        acts_before = policy.act_lanes.copy()
        marks = policy._req_mark.copy()
        svc.apply_shock(0.0, lane=1)
        # Same lane count: per-shard ACT state survives the re-fire.
        assert policy.act_lanes is not None
        np.testing.assert_array_equal(policy.act_lanes, acts_before)
        np.testing.assert_array_equal(policy._req_mark, marks)
        svc.submit_jobs(jobs[20:])
        svc.drain()
        assert svc.result().n_jobs == 40


class TestShockReplayIdentity:
    """The same shock sequence is deterministic across runs and modes."""

    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_two_identical_runs_agree(self, mode):
        rng = np.random.default_rng(0)
        jobs = [
            make_job(
                i, arrival=float(i * 7), duration=float(rng.uniform(50, 2000)),
                size=float(rng.uniform(0.5, 3.0) * GIB),
                pipeline=f"pipe{int(rng.integers(0, 6))}",
            )
            for i in range(120)
        ]
        from repro.workloads import Trace

        trace = Trace(jobs, name="shockdet")

        def run():
            svc = PlacementService(FirstFitPolicy(), 6 * GIB, 3, mode=mode)
            svc.open(trace)
            for i, j in enumerate(jobs):
                svc.submit_jobs([j])
                if i == 40:
                    svc.apply_shock(0.0, lane=1)
                if i == 80:
                    svc.apply_shock(6 * GIB)
            res = svc.result()
            return res, svc.stats.n_evicted, np.asarray(svc.kernel.free).copy()

        (r1, e1, f1), (r2, e2, f2) = run(), run()
        assert e1 == e2
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(r1.ssd_fraction, r2.ssd_fraction)
        assert r1.realized_tco == r2.realized_tco
        assert (f1 >= 0).all()
