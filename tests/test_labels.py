"""Category label design (Section 4.2)."""

import numpy as np
import pytest

from repro.core import CategoryLabeler


@pytest.fixture()
def fitted():
    rng = np.random.default_rng(0)
    n = 2000
    savings = rng.normal(0.5, 1.0, n)
    density = rng.lognormal(3.0, 1.5, n)
    labeler = CategoryLabeler(n_categories=10).fit(savings, density)
    return labeler, savings, density


class TestCategoryLabeler:
    def test_rejects_single_category(self):
        with pytest.raises(ValueError):
            CategoryLabeler(1)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CategoryLabeler(5).transform(np.zeros(3), np.zeros(3))

    def test_negative_savings_get_category_zero(self, fitted):
        labeler, savings, density = fitted
        labels = labeler.transform(savings, density)
        assert (labels[savings < 0] == 0).all()
        assert (labels[savings >= 0] >= 1).all()

    def test_labels_in_range(self, fitted):
        labeler, savings, density = fitted
        labels = labeler.transform(savings, density)
        assert labels.min() >= 0
        assert labels.max() <= 9

    def test_higher_density_higher_category(self, fitted):
        labeler, _, _ = fitted
        s = np.ones(3)
        d = np.array([1.0, 50.0, 1e6])
        labels = labeler.transform(s, d)
        assert labels[0] <= labels[1] <= labels[2]
        assert labels[2] == 9

    def test_positive_categories_roughly_balanced(self, fitted):
        labeler, savings, density = fitted
        labels = labeler.transform(savings, density)
        pos = labels[savings >= 0]
        counts = np.bincount(pos, minlength=10)[1:]
        # Equal-mass quantile design: no class more than 2x another.
        assert counts.max() < 2.5 * max(counts.min(), 1)

    def test_frozen_edges_apply_to_new_data(self, fitted):
        labeler, _, _ = fitted
        edges_before = labeler.density_edges_.copy()
        labeler.transform(np.ones(10), np.linspace(1, 100, 10))
        assert np.array_equal(labeler.density_edges_, edges_before)

    def test_all_negative_degenerate(self):
        labeler = CategoryLabeler(5).fit(-np.ones(10), np.arange(10.0))
        labels = labeler.transform(-np.ones(10), np.arange(10.0))
        assert (labels == 0).all()

    def test_shape_mismatch_raises(self, fitted):
        labeler, _, _ = fitted
        with pytest.raises(ValueError):
            labeler.transform(np.zeros(3), np.zeros(4))

    def test_paper_formula_partitioning(self):
        """With N=3 and uniform density, positive jobs split 50/50."""
        savings = np.ones(1000)
        density = np.linspace(0, 1, 1000)
        labels = CategoryLabeler(3).fit_transform(savings, density)
        assert set(np.unique(labels)) == {1, 2}
        frac_top = (labels == 2).mean()
        assert 0.45 < frac_top < 0.55
