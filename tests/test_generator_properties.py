"""Property-based tests on trace generation and feature extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import DAY
from repro.workloads import (
    ARCHETYPES,
    ClusterSpec,
    extract_features,
    generate_cluster_trace,
)

ARCHETYPE_NAMES = sorted(ARCHETYPES)


@st.composite
def cluster_specs(draw):
    names = draw(
        st.lists(st.sampled_from(ARCHETYPE_NAMES), min_size=1, max_size=4, unique=True)
    )
    weights = {n: draw(st.floats(min_value=0.1, max_value=5.0)) for n in names}
    return ClusterSpec(
        name="H",
        archetype_weights=weights,
        n_pipelines=draw(st.integers(min_value=1, max_value=8)),
        n_users=draw(st.integers(min_value=1, max_value=4)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


class TestGeneratorProperties:
    @given(spec=cluster_specs())
    @settings(max_examples=15, deadline=None)
    def test_trace_invariants(self, spec):
        trace = generate_cluster_trace(spec, duration=1 * DAY)
        # All physical quantities valid.
        assert (trace.durations > 0).all()
        assert (trace.sizes > 0).all()
        assert (trace.read_ops >= 1).all()
        assert (trace.read_bytes >= 0).all()
        assert (trace.write_bytes >= 0).all()
        # Arrival-sorted.
        assert (np.diff(trace.arrivals) >= 0).all()
        # Every job belongs to a requested archetype.
        assert {j.archetype for j in trace} <= set(spec.archetype_weights)

    @given(spec=cluster_specs())
    @settings(max_examples=10, deadline=None)
    def test_generation_deterministic(self, spec):
        a = generate_cluster_trace(spec, duration=1 * DAY)
        b = generate_cluster_trace(spec, duration=1 * DAY)
        assert len(a) == len(b)
        if len(a):
            assert np.allclose(a.sizes, b.sizes)
            assert np.allclose(a.read_ops, b.read_ops)

    @given(spec=cluster_specs())
    @settings(max_examples=10, deadline=None)
    def test_features_finite_and_aligned(self, spec):
        trace = generate_cluster_trace(spec, duration=1 * DAY)
        if len(trace) == 0:
            return
        fm = extract_features(trace)
        assert fm.X.shape[0] == len(trace)
        assert np.isfinite(fm.X).all()
        # Hashed metadata indicators are binary.
        b_cols = fm.group_columns("B")
        assert set(np.unique(fm.X[:, b_cols])) <= {0.0, 1.0}

    @given(spec=cluster_specs())
    @settings(max_examples=10, deadline=None)
    def test_costs_finite(self, spec):
        trace = generate_cluster_trace(spec, duration=1 * DAY)
        if len(trace) == 0:
            return
        costs = trace.costs()
        assert np.isfinite(costs.c_hdd).all()
        assert np.isfinite(costs.c_ssd).all()
        assert (costs.c_hdd > 0).all()
        assert (costs.c_ssd > 0).all()


class TestSparklineProperty:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sparkline_never_crashes(self, values):
        from repro.analysis import render_sparkline

        out = render_sparkline(values)
        assert isinstance(out, str)
        if values:
            assert "[" in out and "]" in out
