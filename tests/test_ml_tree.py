"""Histogram tree and quantile binner."""

import numpy as np
import pytest

from repro.ml import HistogramTree, QuantileBinner


class TestQuantileBinner:
    def test_rejects_bad_n_bins(self):
        with pytest.raises(ValueError):
            QuantileBinner(1)
        with pytest.raises(ValueError):
            QuantileBinner(500)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_monotone_binning(self, rng):
        X = rng.normal(size=(1000, 1))
        binner = QuantileBinner(16).fit(X)
        codes = binner.transform(X)[:, 0]
        order = np.argsort(X[:, 0])
        assert (np.diff(codes[order].astype(int)) >= 0).all()

    def test_roughly_equal_mass(self, rng):
        X = rng.normal(size=(10000, 1))
        codes = QuantileBinner(8).fit_transform(X)[:, 0]
        counts = np.bincount(codes, minlength=8)
        assert counts.min() > 500  # ~1250 expected per bin

    def test_binary_features_get_two_bins(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        binner = QuantileBinner(64).fit(X)
        codes = binner.fit_transform(X)[:, 0]
        assert set(codes.tolist()) == {0, 1}

    def test_constant_column(self):
        X = np.full((100, 1), 3.0)
        codes = QuantileBinner(8).fit_transform(X)[:, 0]
        assert (codes == 0).all()

    def test_column_mismatch_raises(self, rng):
        binner = QuantileBinner(8).fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            binner.transform(rng.normal(size=(10, 2)))

    def test_unseen_values_clip(self, rng):
        X = rng.uniform(0, 1, size=(1000, 1))
        binner = QuantileBinner(8).fit(X)
        far = binner.transform(np.array([[100.0], [-100.0]]))[:, 0]
        assert far[0] == binner.transform(X)[:, 0].max()
        assert far[1] == 0


class TestHistogramTree:
    def _fit_step(self, rng, n=2000):
        """y = step function of x0: one split should capture it."""
        X = rng.uniform(0, 1, size=(n, 3))
        y = np.where(X[:, 0] > 0.5, 1.0, -1.0)
        binner = QuantileBinner(32)
        Xb = binner.fit_transform(X)
        # squared loss at pred=0: g = -y, h = 1
        tree = HistogramTree.fit(Xb, -y, np.ones(n), max_depth=2, n_bins=32)
        return tree, Xb, y

    def test_recovers_step_function(self, rng):
        tree, Xb, y = self._fit_step(rng)
        pred = tree.predict(Xb)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_root_split_on_informative_feature(self, rng):
        tree, _, _ = self._fit_step(rng)
        assert tree.feature[0] == 0

    def test_pure_node_becomes_leaf(self, rng):
        n = 500
        Xb = np.zeros((n, 2), dtype=np.uint8)  # no split possible
        g = rng.normal(size=n)
        tree = HistogramTree.fit(Xb, g, np.ones(n), max_depth=3, n_bins=4)
        assert tree.is_leaf[0]
        assert tree.value[0] == pytest.approx(-g.sum() / (n + 1.0))

    def test_min_samples_leaf_respected(self, rng):
        n = 100
        X = rng.uniform(size=(n, 1))
        y = X[:, 0]
        Xb = QuantileBinner(32).fit_transform(X)
        tree = HistogramTree.fit(
            Xb, -y, np.ones(n), max_depth=6, min_samples_leaf=40, n_bins=32
        )
        # With min 40 per leaf and 100 samples, at most 2 leaves.
        assert tree.n_leaves <= 2

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            HistogramTree.fit(np.zeros((10, 2), dtype=np.uint8), np.zeros(5), np.ones(5))

    def test_deeper_tree_fits_better(self, rng):
        X = rng.uniform(size=(3000, 2))
        y = np.sin(6 * X[:, 0]) + np.cos(4 * X[:, 1])
        Xb = QuantileBinner(64).fit_transform(X)
        errs = []
        for depth in (1, 3, 6):
            tree = HistogramTree.fit(Xb, -y, np.ones(len(y)), max_depth=depth)
            errs.append(np.mean((tree.predict(Xb) - y) ** 2))
        assert errs[0] > errs[1] > errs[2]
