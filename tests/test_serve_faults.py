"""Fault injection: every scripted fault fires, none escapes the service.

The graceful-degradation contract: a ``FaultInjector`` can throw lane
losses, quota changes, categorizer outages, lost/duplicated completion
events, transient submit errors, and crash points at a
``PlacementService``, and the only exceptions that ever surface are the
two *deliberate* ones (:class:`TransientSubmitError`, which callers
retry, and :class:`InjectedCrash`, which models a process death).
Everything else is absorbed: admission falls back to the heuristic
categorizer, shocks keep accounting exact, and completes stay
idempotent.  A seeded random-plan property test sweeps the space.
"""

import json

import numpy as np
import pytest

from repro.baselines import FirstFitPolicy
from repro.serve import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    LoadGenerator,
    OnlineAdaptivePolicy,
    PlacementService,
    TransientSubmitError,
)
from repro.units import GIB
from repro.workloads import Trace
from repro.workloads.metadata import stable_hash

from helpers import make_job
from test_serve_service import random_trace


def _categorizer(n_cat=8):
    return lambda jobs: [1 + stable_hash(j.pipeline, seed=1) % (n_cat - 1)
                         for j in jobs]


def _adaptive_service(cap=10 * GIB, n_shards=4, n_cat=8):
    svc = PlacementService(
        OnlineAdaptivePolicy(n_cat, per_shard_act=True), cap, n_shards,
        mode="batch", categorizer=_categorizer(n_cat),
    )
    return svc


class TestPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(at=0, kind="martian")
        with pytest.raises(ValueError, match="at"):
            FaultEvent(at=-1, kind="quota", scale=0.5)
        with pytest.raises(ValueError, match="count"):
            FaultEvent(at=0, kind="drop_complete", count=0)
        with pytest.raises(ValueError, match="lane"):
            FaultEvent(at=0, kind="lane_loss")  # lane kinds need lane=

    def test_json_round_trip(self):
        plan = FaultPlan((
            FaultEvent(at=10, kind="lane_loss", lane=1),
            FaultEvent(at=20, kind="lane_shrink", lane=0, scale=0.25),
            FaultEvent(at=30, kind="quota", capacity=5 * GIB),
            FaultEvent(at=40, kind="drop_complete", count=3),
        ))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert len(again) == 4
        # The wire format is plain JSON with an "events" list.
        assert [e["kind"] for e in json.loads(plan.to_json())["events"]] == [
            "lane_loss", "lane_shrink", "quota", "drop_complete",
        ]

    def test_from_file(self, tmp_path):
        p = tmp_path / "plan.json"
        p.write_text('{"events": [{"at": 5, "kind": "cat_fail"}]}')
        plan = FaultPlan.from_file(p)
        assert plan.events == (FaultEvent(at=5, kind="cat_fail"),)


class TestInjectorFires:
    def test_fires_at_submission_counts_in_plan_order(self):
        svc = _adaptive_service()
        plan = FaultPlan((
            FaultEvent(at=30, kind="cat_recover"),
            FaultEvent(at=10, kind="cat_fail"),
            FaultEvent(at=10, kind="drop_complete", count=1),
        ))
        inj = FaultInjector(svc, plan)
        jobs = [make_job(i, arrival=float(i)) for i in range(40)]
        for lo in range(0, 40, 5):
            inj.submit_jobs(jobs[lo:lo + 5])
        inj.drain()
        assert [(e.at, e.kind) for e in inj.fired] == [
            (10, "cat_fail"), (10, "drop_complete"), (30, "cat_recover"),
        ]
        assert inj.n_submitted_through == 40

    def test_every_kind_fires(self):
        """One plan touching all eleven kinds runs to completion (the
        crash kind, last, surfaces as InjectedCrash — the one deliberate
        process-death signal; worker_kill is a counted no-op against a
        single-process service)."""
        svc = _adaptive_service()
        events = [
            FaultEvent(at=5, kind="lane_loss", lane=1),
            FaultEvent(at=10, kind="lane_shrink", lane=0, scale=0.5),
            FaultEvent(at=15, kind="lane_restore", lane=1),
            FaultEvent(at=20, kind="quota", scale=0.5),
            FaultEvent(at=25, kind="cat_fail"),
            FaultEvent(at=30, kind="cat_recover"),
            FaultEvent(at=35, kind="drop_complete", count=1),
            FaultEvent(at=35, kind="dup_complete", count=1),
            FaultEvent(at=40, kind="submit_error", count=1),
            FaultEvent(at=45, kind="worker_kill", lane=0),
            FaultEvent(at=50, kind="crash"),
        ]
        inj = FaultInjector(svc, FaultPlan(tuple(events)))
        jobs = [make_job(i, arrival=float(i), size=0.5 * GIB) for i in range(60)]
        crashed = False
        for lo in range(0, 60, 5):
            try:
                inj.submit_jobs(jobs[lo:lo + 5])
            except TransientSubmitError:
                inj.submit_jobs(jobs[lo:lo + 5])  # retry succeeds
            except InjectedCrash:
                crashed = True
                break
            inj.complete(lo)
        assert crashed
        assert {e.kind for e in inj.fired} == set(FAULT_KINDS)

    def test_lane_restore_returns_original_capacity(self):
        svc = _adaptive_service(cap=8 * GIB, n_shards=4)
        orig = np.asarray(svc.lane_capacities).copy()
        plan = FaultPlan((
            FaultEvent(at=2, kind="lane_loss", lane=1),
            FaultEvent(at=4, kind="lane_shrink", lane=1, scale=0.25),
            FaultEvent(at=6, kind="lane_restore", lane=1),
        ))
        inj = FaultInjector(svc, plan)
        for i in range(10):
            inj.submit_jobs([make_job(i, arrival=float(i))])
        # lane_shrink after lane_loss keeps the ORIGINAL capacity
        # remembered (setdefault), so restore is exact.
        np.testing.assert_array_equal(np.asarray(svc.lane_capacities), orig)
        assert svc.stats.n_shocks == 3

    def test_crash_hook_called_before_raise(self):
        svc = _adaptive_service()
        called = []
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=0, kind="crash"),)),
            crash=lambda: called.append(True),
        )
        with pytest.raises(InjectedCrash):
            inj.submit_jobs([make_job(0)])
        assert called == [True]

    def test_proxy_delegates_everything_else(self):
        svc = _adaptive_service()
        inj = FaultInjector(svc, FaultPlan())
        inj.submit_jobs([make_job(0)])
        assert inj.stats is svc.stats
        assert inj.pending == svc.pending
        assert inj.result().n_jobs == 1


class TestCategorizerOutage:
    def test_degrades_and_recovers_without_raising(self):
        svc = _adaptive_service()
        plan = FaultPlan((
            FaultEvent(at=20, kind="cat_fail"),
            FaultEvent(at=60, kind="cat_recover"),
        ))
        inj = FaultInjector(svc, plan)
        jobs = [make_job(i, arrival=float(i), pipeline=f"p{i % 5}")
                for i in range(100)]
        for lo in range(0, 100, 10):
            inj.submit_jobs(jobs[lo:lo + 10])
        inj.drain()
        st = svc.stats
        assert st.degraded_jobs == 40  # submissions 20..59 inclusive
        assert st.categorizer_failures == 4  # one per degraded batch
        # The outage closed: exactly one recorded interval, spanning the
        # degraded arrivals, and no outage is still open.
        assert len(st.degraded_intervals) == 1
        t0, t1 = st.degraded_intervals[0]
        assert (t0, t1) == (20.0, 60.0)
        assert svc.degraded_since is None
        assert svc.result().n_jobs == 100

    def test_unrecovered_outage_stays_open(self):
        svc = _adaptive_service()
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=5, kind="cat_fail"),))
        )
        for i in range(10):
            inj.submit_jobs([make_job(i, arrival=float(i))])
        assert svc.stats.degraded_intervals == []
        assert svc.degraded_since == 5.0
        assert svc.stats.degraded_jobs == 5

    def test_cat_fail_without_categorizer_is_noop(self):
        svc = PlacementService(FirstFitPolicy(), 10 * GIB, 2, mode="batch")
        trace = Trace([make_job(i, arrival=float(i)) for i in range(10)],
                      name="nocat")
        svc.open(trace)
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=2, kind="cat_fail"),))
        )
        inj.submit_jobs(list(trace.jobs))
        inj.drain()
        assert svc.stats.degraded_jobs == 0
        assert svc.result().n_jobs == 10


class TestCompleteChaos:
    def _decided_service(self):
        svc = _adaptive_service()
        inj_jobs = [make_job(i, arrival=float(i), size=0.5 * GIB,
                             duration=10_000.0) for i in range(20)]
        svc.submit_jobs(inj_jobs)
        svc.drain()
        return svc

    def test_dropped_complete_never_reaches_service(self):
        svc = self._decided_service()
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=0, kind="drop_complete", count=2),))
        )
        inj.submit_jobs([make_job(100, arrival=30.0)])  # fires the event
        before = svc.stats.n_completions
        assert inj.complete(0) is False
        assert inj.complete(1) is False
        assert inj.complete(2) is True  # budget spent: back to normal
        assert inj.n_dropped_completes == 2
        assert svc.stats.n_completions == before + 1

    def test_duplicated_complete_is_idempotent(self):
        svc = self._decided_service()
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=0, kind="dup_complete", count=1),))
        )
        inj.submit_jobs([make_job(100, arrival=30.0)])
        free_before = float(np.asarray(svc.kernel.free).sum())
        assert inj.complete(3) is True
        assert inj.n_duplicated_completes == 1
        # The double-send is a counted no-op on the service: space freed
        # exactly once, never twice.
        assert svc.stats.duplicate_completes >= 1
        freed = float(np.asarray(svc.kernel.free).sum()) - free_before
        assert freed <= 0.5 * GIB + 1e-6


class TestSubmitErrorRetry:
    def _gen(self, trace, **kw):
        naps = []
        gen = LoadGenerator(
            trace, batch_jobs=10, clock=lambda: 0.0,
            sleep=naps.append, **kw,
        )
        return gen, naps

    def test_loadgen_retries_transient_errors(self):
        trace = random_trace(21, n=60)
        svc = _adaptive_service(cap=20 * GIB)
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=20, kind="submit_error", count=2),))
        )
        gen, naps = self._gen(trace)
        report = gen.run(inj)
        assert report.n_retries == 2
        assert report.n_jobs == 60  # nothing lost
        # Exponential backoff: first retry 0.05s, second 0.05s again
        # (each submission's attempt counter starts fresh).
        assert naps.count(0.05) >= 1
        assert svc.result().n_jobs == 60

    def test_loadgen_exhausts_retries_and_raises(self):
        trace = random_trace(22, n=30)
        svc = _adaptive_service(cap=20 * GIB)
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=0, kind="submit_error", count=9),))
        )
        gen, _ = self._gen(trace, max_retries=1)
        with pytest.raises(TransientSubmitError):
            gen.run(inj)

    def test_zero_retries_raises_immediately(self):
        trace = random_trace(23, n=20)
        svc = _adaptive_service(cap=20 * GIB)
        inj = FaultInjector(
            svc, FaultPlan((FaultEvent(at=0, kind="submit_error", count=1),))
        )
        gen, naps = self._gen(trace, max_retries=0)
        with pytest.raises(TransientSubmitError):
            gen.run(inj)
        assert naps == []  # no backoff naps on an immediate give-up


class TestRandomPlansProperty:
    """Seeded random fault plans: nothing escapes, accounting stays exact."""

    KINDS = tuple(k for k in FAULT_KINDS if k != "crash")

    def _random_plan(self, rng, n_events, n_jobs, n_shards):
        events = []
        for _ in range(n_events):
            kind = self.KINDS[rng.integers(0, len(self.KINDS))]
            kw = {"at": int(rng.integers(0, n_jobs)), "kind": kind}
            if kind in ("lane_loss", "lane_shrink", "lane_restore",
                        "worker_kill"):
                kw["lane"] = int(rng.integers(0, n_shards))
                if kind == "lane_shrink":
                    kw["scale"] = float(rng.uniform(0.1, 0.9))
            elif kind == "quota":
                kw["scale"] = float(2.0 ** rng.integers(-2, 2))
            elif kind in ("drop_complete", "dup_complete", "submit_error"):
                kw["count"] = int(rng.integers(1, 4))
            events.append(FaultEvent(**kw))
        return FaultPlan(tuple(events))

    @pytest.mark.parametrize("seed", range(6))
    def test_no_fault_escapes(self, seed):
        rng = np.random.default_rng(seed)
        n_shards = int(rng.integers(1, 5))
        trace = random_trace(seed + 40, n=150)
        plan = self._random_plan(rng, n_events=12, n_jobs=150,
                                 n_shards=n_shards)
        svc = PlacementService(
            OnlineAdaptivePolicy(8, per_shard_act=n_shards > 1),
            4 * GIB, n_shards, mode="batch", categorizer=_categorizer(),
        )
        inj = FaultInjector(svc, plan)
        jobs = list(trace.jobs)
        done = 0
        while done < len(jobs):
            hi = min(done + 10, len(jobs))
            try:
                decisions = inj.submit_jobs(jobs[done:hi])
            except TransientSubmitError:
                continue  # retry the same batch — the only allowed escape
            done = hi
            for d in decisions:
                if done % 3 == 0:
                    inj.complete(d.job_id)
            assert (np.asarray(svc.kernel.free) >= 0.0).all(), seed
            assert np.isclose(
                float(np.asarray(svc.lane_capacities).sum()), svc.capacity
            ), seed
        inj.drain()
        res = svc.result()
        assert res.n_jobs == 150
        assert len(inj.fired) == 12
        assert res.n_spilled >= svc.stats.n_evicted
