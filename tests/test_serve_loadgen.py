"""Load generator: pacing, burst shapes, re-chunking, graceful stop."""

import numpy as np
import pytest

from repro.baselines import FirstFitPolicy
from repro.serve import LoadGenerator, PlacementService, metrics_latency_summary
from repro.units import GIB
from repro.workloads import InMemoryTraceSource, Trace
from repro.workloads.streaming import TraceBlock, rechunk_blocks

from helpers import make_job


def small_trace(n=60, seed=0, span=600.0):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, span, n))
    jobs = [
        make_job(i, arrival=float(arrivals[i]), duration=30.0, size=1 * GIB,
                 pipeline=f"p{i % 5}")
        for i in range(n)
    ]
    return Trace(jobs, name="lg")


class FakeClock:
    """Deterministic clock + sleep pair for pacing tests."""

    def __init__(self):
        self.t = 0.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.t

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.t += dt


def make_service(trace, capacity=100 * GIB):
    svc = PlacementService(FirstFitPolicy(), capacity, mode="batch")
    svc.open(trace)
    return svc


class TestRechunk:
    def _blocks(self, trace, block_size):
        return InMemoryTraceSource(trace, block_size=block_size)

    @pytest.mark.parametrize("src_block,batch", [(7, 16), (64, 10), (16, 16)])
    def test_resliced_jobs_identical(self, src_block, batch):
        trace = small_trace(50)
        out = list(rechunk_blocks(self._blocks(trace, src_block), batch))
        assert all(len(b) == batch for b in out[:-1])
        assert sum(len(b) for b in out) == len(trace)
        arrivals = np.concatenate([b.arrivals for b in out])
        np.testing.assert_array_equal(arrivals, trace.arrivals)
        pipelines = [p for b in out for p in b.pipelines]
        assert pipelines == trace.pipelines

    def test_empty_source(self):
        assert list(rechunk_blocks(iter(()), 8)) == []

    def test_skips_empty_blocks(self):
        empty = TraceBlock(*[np.empty(0)] * 6)
        trace = small_trace(10)
        blocks = [empty] + list(self._blocks(trace, 4)) + [empty]
        out = list(rechunk_blocks(iter(blocks), 6))
        assert sum(len(b) for b in out) == 10

    def test_validates_batch_size(self):
        with pytest.raises(ValueError, match="batch_jobs"):
            list(rechunk_blocks(iter(()), 0))


class TestPacing:
    def test_unpaced_never_sleeps(self):
        trace = small_trace()
        fake = FakeClock()
        gen = LoadGenerator(
            trace, rate=None, batch_jobs=16, clock=fake.clock, sleep=fake.sleep
        )
        report = gen.run(make_service(trace))
        assert fake.sleeps == []
        assert report.n_jobs == len(trace)
        assert report.n_decisions == len(trace)
        assert report.offered_rate is None

    def test_uniform_rate_schedules_sleeps(self):
        trace = small_trace(40)
        fake = FakeClock()
        gen = LoadGenerator(
            trace, rate=10.0, shape="uniform", batch_jobs=10,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(make_service(trace))
        # Batches release at t = 0, 1, 2, 3 (10 jobs at 10 jobs/s each).
        assert len(fake.sleeps) == 3
        np.testing.assert_allclose(fake.sleeps, [1.0, 1.0, 1.0], atol=1e-9)
        assert report.n_jobs == 40
        assert report.lag_seconds == 0.0

    def test_poisson_rate_deterministic_under_seed(self):
        trace = small_trace(30)
        runs = []
        for _ in range(2):
            fake = FakeClock()
            gen = LoadGenerator(
                trace, rate=50.0, shape="poisson", batch_jobs=8, seed=3,
                clock=fake.clock, sleep=fake.sleep,
            )
            gen.run(make_service(trace))
            runs.append(tuple(fake.sleeps))
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0

    def test_trace_shape_scales_interarrivals(self):
        trace = small_trace(40, span=400.0)
        fake = FakeClock()
        gen = LoadGenerator(
            trace, rate=1000.0, shape="trace", batch_jobs=10,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(make_service(trace))
        # The natural rate is ~0.1 job/s; at 1000 jobs/s the whole trace
        # compresses to ~40ms of schedule.
        assert report.n_jobs == 40
        assert fake.t < 1.0

    def test_limit_caps_released_jobs(self):
        trace = small_trace(50)
        gen = LoadGenerator(trace, batch_jobs=16)
        svc = make_service(trace)
        report = gen.run(svc, limit=20)
        assert report.n_jobs == 20
        assert svc.n_decided == 20

    def test_lag_recorded_when_service_slow(self):
        trace = small_trace(30)
        fake = FakeClock()

        class SlowService:
            def __init__(self, inner):
                self.inner = inner

            def submit_block(self, block):
                fake.t += 5.0  # each batch takes 5 wall-clock seconds
                return self.inner.submit_block(block)

            def drain(self):
                return self.inner.drain()

        gen = LoadGenerator(
            trace, rate=100.0, shape="uniform", batch_jobs=10,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(SlowService(make_service(trace)))
        assert report.lag_seconds > 0  # open loop: lag, not throttling

    def test_validation(self):
        trace = small_trace(10)
        with pytest.raises(ValueError, match="burst shape"):
            LoadGenerator(trace, shape="sawtooth")
        with pytest.raises(ValueError, match="rate"):
            LoadGenerator(trace, rate=0.0)
        with pytest.raises(ValueError, match="batch_jobs"):
            LoadGenerator(trace, batch_jobs=0)


class TestClosedLoop:
    def test_validation(self):
        trace = small_trace(10)
        with pytest.raises(ValueError, match="mode"):
            LoadGenerator(trace, mode="half-open")
        with pytest.raises(ValueError, match="max_in_flight"):
            LoadGenerator(trace, max_in_flight=0)
        with pytest.raises(ValueError, match="warmup"):
            LoadGenerator(trace, warmup=-1)

    def test_paced_schedule_keeps_offered_gap(self):
        """A fast service sees the plain offered gap: batch/rate."""
        trace = small_trace(40)
        fake = FakeClock()
        gen = LoadGenerator(
            trace, rate=10.0, mode="closed", batch_jobs=10,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(make_service(trace))
        assert len(fake.sleeps) == 3
        np.testing.assert_allclose(fake.sleeps, [1.0, 1.0, 1.0], atol=1e-9)
        assert report.mode == "closed"
        assert report.lag_seconds == 0.0

    def test_slow_service_slips_schedule_instead_of_lagging(self):
        """Latency-aware pacing: the target slips to "now" when the
        service is slower than the offered rate, so the closed loop
        never accumulates the unbounded lag the open loop records."""
        trace = small_trace(30)
        fake = FakeClock()

        class SlowService:
            def __init__(self, inner):
                self.inner = inner
                self.pending = 0

            def submit_block(self, block):
                fake.t += 5.0  # each batch takes 5 wall-clock seconds
                return self.inner.submit_block(block)

            def drain(self):
                return self.inner.drain()

        gen = LoadGenerator(
            trace, rate=100.0, mode="closed", batch_jobs=10,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(SlowService(make_service(trace)))
        assert fake.sleeps == []  # schedule slipped, never slept
        assert report.lag_seconds == 0.0

    def test_warmup_measure_split(self):
        trace = small_trace(60)
        fake = FakeClock()
        gen = LoadGenerator(
            trace, rate=None, mode="closed", batch_jobs=10, warmup=25,
            clock=fake.clock, sleep=fake.sleep,
        )
        report = gen.run(make_service(trace))
        # Measurement starts at the first batch released at sent >= 25:
        # sent = 0, 10, 20, [30, 40, 50] — three measured batches.
        assert report.warmup_jobs == 25
        assert report.n_measured_jobs == 30
        assert len(report.measured_batch_seconds) == 3
        assert report.n_jobs == 60
        assert 0.0 <= report.measured_elapsed <= report.elapsed

    def test_warmup_beyond_trace_falls_back(self):
        trace = small_trace(20)
        gen = LoadGenerator(trace, mode="closed", batch_jobs=10, warmup=999)
        report = gen.run(make_service(trace))
        assert report.n_measured_jobs == 0
        assert report.measured_elapsed == 0.0
        # Fallbacks report whole-run numbers rather than zeros.
        assert report.measured_rate == report.achieved_rate
        assert (report.measured_latency_percentile(50)
                == report.latency_percentile(50))

    def test_max_in_flight_forces_drains(self):
        trace = small_trace(64)
        svc = make_service(trace)
        gen = LoadGenerator(
            trace, rate=None, mode="closed", batch_jobs=8, max_in_flight=4
        )
        report = gen.run(svc)
        assert report.n_forced_drains > 0
        assert report.in_flight_peak > 4
        assert svc.pending == 0
        assert report.n_decisions == len(trace)

    def test_pacing_never_changes_decisions(self):
        """Open unpaced, open paced, and closed paced runs produce
        bit-identical roll-ups — pacing is pure timing."""
        trace = small_trace(60)
        results = []
        for kw in (
            {"rate": None, "mode": "open"},
            {"rate": 25.0, "mode": "open", "shape": "uniform"},
            {"rate": 25.0, "mode": "closed", "warmup": 16,
             "max_in_flight": 32},
        ):
            fake = FakeClock()
            svc = make_service(trace)
            gen = LoadGenerator(
                trace, batch_jobs=8, clock=fake.clock, sleep=fake.sleep, **kw
            )
            gen.run(svc)
            results.append(svc.result())
        base = results[0]
        for res in results[1:]:
            assert res.n_ssd_requested == base.n_ssd_requested
            assert res.n_spilled == base.n_spilled
            assert res.realized_tco == base.realized_tco
            np.testing.assert_array_equal(res.ssd_fraction, base.ssd_fraction)

    def test_on_batch_callback_sees_live_report(self):
        trace = small_trace(30)
        seen = []
        gen = LoadGenerator(trace, batch_jobs=10)
        report = gen.run(
            make_service(trace), on_batch=lambda r: seen.append(r.n_batches)
        )
        assert seen == [1, 2, 3]
        assert report.n_batches == 3


class TickingClock:
    """Time source that advances a fixed tick on every read.

    Shared between the load generator (``clock=``/``sleep=``) and the
    service's ``perf_counter`` (monkeypatched), it makes both latency
    windows deterministic: the service's inner window spans exactly one
    tick per batch (the two ``perf_counter`` reads bracketing
    ``submit_batch``) while the generator's outer window spans three
    (its ``t0`` read, the inner pair, its ``dt`` read) — so the
    histogram-derived summary must sit at or below the client-observed
    percentiles.
    """

    def __init__(self, tick=1e-3):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t

    def sleep(self, dt):
        self.t += dt


class TestMetricsLatencySummary:
    def test_none_before_any_observation(self):
        trace = small_trace(10)
        svc = make_service(trace)
        assert metrics_latency_summary(svc) is None

    def test_summary_consistent_with_report(self, monkeypatch):
        """The metrics-surface percentiles never exceed the client's.

        The service's batch histogram times only the ``submit_batch``
        body; the generator's ``batch_seconds`` wrap that same call
        from outside.  With one shared ticking clock the nesting is
        exact (1 inner tick vs 3 outer ticks per batch), so the
        quantile read off the fixed-bucket histogram must bound the
        report's ``np.percentile`` from below — the dashboard can
        round a latency down to a bucket edge, never inflate it.
        """
        trace = small_trace(60)
        ticker = TickingClock(tick=1e-3)
        monkeypatch.setattr("repro.serve.service.perf_counter", ticker)
        svc = make_service(trace)
        gen = LoadGenerator(
            trace, rate=None, batch_jobs=16,
            clock=ticker, sleep=ticker.sleep,
        )
        report = gen.run(svc)
        summary = metrics_latency_summary(svc)
        assert summary is not None
        assert summary["metric"] == "serve_batch_seconds"
        assert summary["count"] == report.n_batches
        for q in (50, 95, 99):
            observed = report.latency_percentile(q)
            estimated = summary[f"p{q}"]
            assert 0.0 < estimated <= observed

    def test_scalar_submit_falls_back_to_request_histogram(self):
        trace = small_trace(5)
        svc = PlacementService(FirstFitPolicy(), 100 * GIB, mode="scalar")
        svc.open(trace)
        for job in trace.jobs:
            svc.submit(job)
        summary = metrics_latency_summary(svc)
        assert summary is not None
        assert summary["metric"] == "serve_request_seconds"
        assert summary["count"] == len(trace)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestGracefulStop:
    def test_keyboard_interrupt_drains_and_reports(self):
        trace = small_trace(40)
        svc = make_service(trace)
        calls = {"n": 0}
        real = svc.submit_block

        def flaky(block):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(block)

        svc.submit_block = flaky
        gen = LoadGenerator(trace, batch_jobs=10)
        report = gen.run(svc)
        assert report.interrupted
        assert report.n_jobs == 10  # one successful batch released
        res = svc.result()  # partial roll-up still works
        assert res.n_jobs == svc.n_decided

    def test_report_percentiles(self):
        trace = small_trace(30)
        gen = LoadGenerator(trace, batch_jobs=10)
        report = gen.run(make_service(trace))
        p50 = report.latency_percentile(50)
        p99 = report.latency_percentile(99)
        assert 0 < p50 <= p99
        assert report.achieved_rate > 0
        empty = small_trace(0)
        assert LoadGenerator(empty).run(
            make_service(empty)
        ).latency_percentile(50) == 0.0
