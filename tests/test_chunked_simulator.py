"""Chunked simulator engine: equivalence with the legacy per-job loop.

Every batched policy is driven through both engines on randomized
traces across capacity regimes (abundant, binding, zero) and the full
:class:`SimResult` surface is compared to float tolerance — including
per-job SSD fractions and, for the adaptive policy, the exact ACT
trajectory.
"""

import numpy as np
import pytest

from repro.baselines import CategoryAdmissionPolicy, FirstFitPolicy, LifetimePolicy
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.storage import BatchDecision, FixedPolicy, simulate
from repro.units import GIB
from repro.workloads import Trace

from helpers import make_job


def random_trace(seed: int, n: int = 800, span: float = 100_000.0) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, span, n))
    jobs = [
        make_job(
            i,
            arrival=float(arrivals[i]),
            duration=float(rng.uniform(30.0, span / 8)),
            size=float(rng.uniform(0.05, 25.0) * GIB),
            pipeline=f"pipe{int(rng.integers(0, 10))}",
        )
        for i in range(n)
    ]
    return Trace(jobs, name=f"rand{seed}")


def assert_equivalent(trace, make_policy, capacity):
    p_legacy = make_policy()
    r_legacy = simulate(trace, p_legacy, capacity, engine="legacy")
    p_chunked = make_policy()
    r_chunked = simulate(trace, p_chunked, capacity, engine="chunked")

    np.testing.assert_allclose(
        r_chunked.ssd_fraction, r_legacy.ssd_fraction, atol=1e-9, rtol=1e-9
    )
    assert r_chunked.n_ssd_requested == r_legacy.n_ssd_requested
    assert r_chunked.n_spilled == r_legacy.n_spilled
    assert r_chunked.realized_tco == pytest.approx(r_legacy.realized_tco, rel=1e-9)
    assert r_chunked.realized_hdd_tcio == pytest.approx(
        r_legacy.realized_hdd_tcio, rel=1e-9
    )
    # Peak usage: tolerance relative to capacity, since the legacy
    # loop's one-at-a-time subtraction loses small allocations first at
    # extreme capacities.
    assert abs(r_chunked.peak_ssd_used - r_legacy.peak_ssd_used) <= max(
        1e-6, 1e-9 * max(capacity, 1.0)
    )
    return p_legacy, p_chunked


CAPACITIES = (0.0, 2 * GIB, 40 * GIB, 400 * GIB, 1e18)


class TestAdaptiveEquivalence:
    @pytest.mark.parametrize("capacity", CAPACITIES)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_placements_and_trajectory(self, seed, capacity):
        trace = random_trace(seed)
        rng = np.random.default_rng(seed + 100)
        cats = rng.integers(0, 8, len(trace))
        params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)

        def build():
            return AdaptiveCategoryPolicy(cats, 8, params)

        p_legacy, p_chunked = assert_equivalent(trace, build, capacity)
        assert len(p_legacy.trajectory) == len(p_chunked.trajectory)
        for a, b in zip(p_legacy.trajectory, p_chunked.trajectory):
            assert a.time == b.time
            assert a.act == b.act
            assert a.spillover == pytest.approx(b.spillover, abs=1e-12)

    def test_zero_decision_interval_updates_every_job(self):
        trace = random_trace(3, n=200)
        cats = np.random.default_rng(3).integers(0, 5, len(trace))
        params = AdaptiveParams(decision_interval=0.0, lookback_window=1000.0)
        policy = AdaptiveCategoryPolicy(cats, 5, params)
        simulate(trace, policy, 20 * GIB, engine="chunked")
        assert len(policy.trajectory) == len(trace)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_firstfit(self, capacity):
        trace = random_trace(11)
        assert_equivalent(trace, FirstFitPolicy, capacity)

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_heuristic(self, capacity):
        trace = random_trace(12)
        train = random_trace(13)
        assert_equivalent(
            trace, lambda: CategoryAdmissionPolicy(train, refresh_interval=9000.0),
            capacity,
        )

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_fixed_replay(self, capacity):
        trace = random_trace(14)
        decisions = np.random.default_rng(14).random(len(trace)) < 0.5
        assert_equivalent(trace, lambda: FixedPolicy(decisions), capacity)

    @pytest.mark.parametrize("capacity", (2 * GIB, 40 * GIB, 1e18))
    def test_lifetime_ttl_eviction(self, capacity, small_trace):
        """TTL-bounded residency must survive the chunked rewrite."""
        from repro.baselines import LifetimeModel
        from repro.cost import DEFAULT_RATES
        from repro.workloads.features import extract_features

        features = extract_features(small_trace, DEFAULT_RATES)
        model = LifetimeModel(n_rounds=4).fit(features, small_trace.durations)
        assert_equivalent(
            small_trace, lambda: LifetimePolicy(model, features), capacity
        )


class TestEngineDispatch:
    def test_auto_uses_chunked_for_batched_policy(self, small_trace):
        cats = np.ones(len(small_trace), dtype=int)
        policy = AdaptiveCategoryPolicy(cats, 4)
        calls = []
        orig = policy.decide_batch
        policy.decide_batch = lambda first, ctx: calls.append(first) or orig(first, ctx)
        simulate(small_trace, policy, 10 * GIB)
        assert calls  # fast path actually taken

    def test_chunked_engine_rejects_unbatched_policy(self, small_trace):
        from repro.storage import Decision, PlacementPolicy

        class Plain(PlacementPolicy):
            def decide(self, job_index, ctx):
                return Decision(want_ssd=False)

        with pytest.raises(ValueError):
            simulate(small_trace, Plain(), 1 * GIB, engine="chunked")
        # auto falls back to the legacy loop silently
        res = simulate(small_trace, Plain(), 1 * GIB)
        assert res.n_ssd_requested == 0

    def test_unknown_engine_rejected(self, small_trace):
        with pytest.raises(ValueError):
            simulate(small_trace, FirstFitPolicy(), 1 * GIB, engine="warp")


class TestChunkProtocolEdges:
    def test_mask_chunks_with_equal_arrival_ties(self):
        """Jobs sharing one timestamp must split/admit exactly as legacy."""
        jobs = [
            make_job(i, arrival=float(100.0 * (i // 3)), duration=500.0, size=4 * GIB)
            for i in range(30)
        ]
        trace = Trace(jobs)
        cats = np.tile([1, 3, 2], 10)
        params = AdaptiveParams(decision_interval=100.0, lookback_window=900.0)
        assert_equivalent(
            trace, lambda: AdaptiveCategoryPolicy(cats, 4, params), 10 * GIB
        )

    def test_zero_size_jobs(self):
        jobs = [
            make_job(i, arrival=10.0 * i, duration=100.0, size=0.0) for i in range(8)
        ]
        trace = Trace(jobs)
        decisions = np.ones(8, dtype=bool)
        assert_equivalent(trace, lambda: FixedPolicy(decisions), 1 * GIB)

    def test_batch_decision_count_clamped_to_trace(self):
        """A policy over-reporting count must not run off the trace end."""

        class Greedy(FixedPolicy):
            def decide_batch(self, first, ctx):
                return BatchDecision(
                    count=10_000, want_ssd=self.decisions[first:]
                )

        jobs = [make_job(i, arrival=10.0 * i, size=1 * GIB) for i in range(20)]
        trace = Trace(jobs)
        res = simulate(
            trace, Greedy(np.ones(20, dtype=bool)), 1e18, engine="chunked"
        )
        assert res.n_ssd_requested == 20
