"""Unified shard-aware placement runtime.

Three pillars:

1. ``n_shards=1`` is :func:`repro.storage.simulate` — both engines,
   same results (the legacy lane loop is the exact per-job reference).
2. Sharded chunked == sharded legacy for every batched policy, across
   capacity regimes, including the policy-visible feedback (adaptive
   trajectory and per-shard counters).
3. The re-entrant retry: a capacity-binding chunk is no longer replayed
   wholesale through the per-candidate loop — the clean prefix and the
   post-binding remainder are admitted vectorized.
"""

import numpy as np
import pytest

from repro.baselines import (
    CategoryAdmissionPolicy,
    FirstFitPolicy,
    ImitationPolicy,
    LifetimeModel,
    LifetimePolicy,
)
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.cost import DEFAULT_RATES
from repro.storage import (
    FixedPolicy,
    run_placement,
    simulate,
    simulate_sharded,
)
from repro.units import GIB
from repro.workloads import Trace
from repro.workloads.features import extract_features

from helpers import make_job


def random_trace(seed: int, n: int = 600, span: float = 100_000.0) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, span, n))
    jobs = [
        make_job(
            i,
            arrival=float(arrivals[i]),
            duration=float(rng.uniform(30.0, span / 8)),
            size=float(rng.uniform(0.05, 25.0) * GIB),
            pipeline=f"pipe{int(rng.integers(0, 10))}",
        )
        for i in range(n)
    ]
    return Trace(jobs, name=f"rand{seed}")


def assert_same_result(a, b, capacity, label=""):
    np.testing.assert_allclose(
        b.ssd_fraction, a.ssd_fraction, atol=1e-9, rtol=1e-9, err_msg=label
    )
    assert b.n_ssd_requested == a.n_ssd_requested, label
    assert b.n_spilled == a.n_spilled, label
    assert b.realized_tco == pytest.approx(a.realized_tco, rel=1e-9), label
    assert b.realized_hdd_tcio == pytest.approx(a.realized_hdd_tcio, rel=1e-9), label
    assert abs(b.peak_ssd_used - a.peak_ssd_used) <= max(
        1e-6, 1e-9 * max(capacity, 1.0)
    ), label


def make_policy_builders(trace, seed):
    """One builder per batched policy family."""
    rng = np.random.default_rng(seed + 100)
    cats = rng.integers(0, 8, len(trace))
    params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
    train = random_trace(seed + 50)
    feats = extract_features(trace, DEFAULT_RATES)
    lt = LifetimeModel(n_rounds=3).fit(feats, trace.durations)
    decisions = rng.random(len(trace)) < 0.5
    return {
        "adaptive": lambda: AdaptiveCategoryPolicy(cats, 8, params),
        "heuristic": lambda: CategoryAdmissionPolicy(train, refresh_interval=9000.0),
        "firstfit": FirstFitPolicy,
        "fixed": lambda: FixedPolicy(decisions),
        "lifetime": lambda: LifetimePolicy(lt, feats),
    }


class TestSingleShardIsSimulate:
    """``n_shards=1`` must reproduce ``simulate`` on both engines."""

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_bit_equal_placements(self, engine):
        trace = random_trace(0)
        cats = np.random.default_rng(7).integers(0, 6, len(trace))
        cap = 30 * GIB
        r_sim = simulate(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, engine=engine
        )
        r_one = simulate_sharded(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, n_shards=1, engine=engine
        )
        # Same code path by construction: exact equality, not tolerance.
        assert np.array_equal(r_one.ssd_fraction, r_sim.ssd_fraction)
        assert r_one.realized_tco == r_sim.realized_tco
        assert r_one.peak_ssd_used == r_sim.peak_ssd_used
        assert r_one.n_spilled == r_sim.n_spilled
        assert r_one.n_shards == r_sim.n_shards == 1

    def test_run_placement_validates(self, small_trace):
        policy = FirstFitPolicy()
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, -1.0)
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, 1 * GIB, n_shards=0)
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, 1 * GIB, engine="warp")


CAPACITIES = (0.0, 2 * GIB, 40 * GIB, 400 * GIB, 1e18)


class TestShardedEngineEquivalence:
    """Chunked sharded == legacy sharded for every batched policy."""

    @pytest.mark.parametrize("n_shards", (1, 3, 8))
    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_all_policies(self, n_shards, capacity):
        trace = random_trace(1)
        for name, build in make_policy_builders(trace, 1).items():
            r_legacy = simulate_sharded(
                trace, build(), capacity, n_shards, engine="legacy"
            )
            r_chunked = simulate_sharded(
                trace, build(), capacity, n_shards, engine="chunked"
            )
            assert_same_result(
                r_legacy, r_chunked, capacity,
                label=f"{name} n_shards={n_shards} cap={capacity:.3g}",
            )

    def test_imitation_rides_the_fast_path(self):
        """ImitationPolicy's decide_batch: whole-trace replay chunks."""
        trace = random_trace(2, n=200)

        class _StubModel:
            def predict(self, feats):
                return np.arange(len(trace)) % 3 == 0

        policy = ImitationPolicy(_StubModel(), features=None)
        calls = []
        orig = policy.decide_batch
        policy.decide_batch = lambda first, ctx: (
            calls.append(first) or orig(first, ctx)
        )
        cap = 20 * GIB
        r_fast = simulate(trace, policy, cap)
        assert calls, "auto engine must use the batch protocol"
        r_ref = simulate(
            trace, ImitationPolicy(_StubModel(), features=None), cap, engine="legacy"
        )
        assert_same_result(r_ref, r_fast, cap, label="imitation")
        # Sharded, both engines:
        for n_shards in (2, 5):
            a = simulate_sharded(
                trace, ImitationPolicy(_StubModel(), None), cap, n_shards,
                engine="legacy",
            )
            b = simulate_sharded(
                trace, ImitationPolicy(_StubModel(), None), cap, n_shards,
                engine="chunked",
            )
            assert_same_result(a, b, cap, label=f"imitation n_shards={n_shards}")


class TestFeedbackPathUnified:
    """Both engines must feed the policy identical outcomes."""

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_adaptive_trajectory_and_shard_counters(self, n_shards):
        trace = random_trace(3)
        cats = np.random.default_rng(3).integers(0, 8, len(trace))
        params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
        cap = 25 * GIB

        p_legacy = AdaptiveCategoryPolicy(cats, 8, params)
        simulate_sharded(trace, p_legacy, cap, n_shards, engine="legacy")
        p_chunked = AdaptiveCategoryPolicy(cats, 8, params)
        simulate_sharded(trace, p_chunked, cap, n_shards, engine="chunked")

        assert len(p_legacy.trajectory) == len(p_chunked.trajectory)
        for a, b in zip(p_legacy.trajectory, p_chunked.trajectory):
            assert a.time == b.time
            assert a.act == b.act
            assert a.spillover == pytest.approx(b.spillover, abs=1e-12)

        # The per-shard feedback (observe vs observe_batch) is identical.
        assert np.array_equal(p_legacy.shard_spills, p_chunked.shard_spills)
        assert np.array_equal(
            p_legacy.shard_ssd_requested, p_chunked.shard_ssd_requested
        )
        assert p_legacy.shard_spills.size == n_shards
        assert int(p_legacy.shard_ssd_requested.sum()) > 0

    def test_spills_spread_across_shards(self):
        """Under pressure, every loaded shard reports its own spills."""
        trace = random_trace(4)
        cats = np.full(len(trace), 5)
        policy = AdaptiveCategoryPolicy(cats, 8)
        res = simulate_sharded(trace, policy, 4 * GIB, n_shards=4)
        assert res.n_spilled > 0
        assert int(policy.shard_spills.sum()) == res.n_spilled
        assert (policy.shard_spills > 0).sum() >= 2


class TestReentrantRetry:
    """Binding chunks no longer fall back wholesale to the scalar loop."""

    def _binding_setting(self, n=200, monster=100):
        # One chunk (static replay), capacity binds exactly once in the
        # middle: short 1 GiB jobs stream through a 16 GiB pool, and
        # job ``monster`` is an 80 GiB job that binds.  The chunk is
        # larger than the scalar window, so the retry must accept the
        # prefix and the post-window remainder vectorized.
        jobs = []
        for i in range(n):
            size = 80 * GIB if i == monster else 1 * GIB
            jobs.append(
                make_job(i, arrival=10.0 * i, duration=40.0, size=size)
            )
        trace = Trace(jobs)
        return trace, np.ones(len(trace), dtype=bool)

    def test_binding_chunk_partial_scalar(self):
        trace, decisions = self._binding_setting()
        cap = 16 * GIB
        res = simulate(trace, FixedPolicy(decisions), cap, engine="chunked")
        ref = simulate(trace, FixedPolicy(decisions), cap, engine="legacy")
        assert_same_result(ref, res, cap, label="binding chunk")
        assert res.n_spilled == 1
        # The retry replays only a window around the binding candidate;
        # the prefix and the post-binding remainder stay vectorized.
        assert 0 < res.scalar_fallback_jobs < res.n_ssd_requested

    def test_clean_chunk_reports_zero_scalar(self):
        trace, decisions = self._binding_setting()
        res = simulate(trace, FixedPolicy(decisions), 1e18, engine="chunked")
        assert res.scalar_fallback_jobs == 0
        assert res.n_spilled == 0

    def test_zero_capacity_stays_exact(self):
        trace, decisions = self._binding_setting()
        res = simulate(trace, FixedPolicy(decisions), 0.0, engine="chunked")
        ref = simulate(trace, FixedPolicy(decisions), 0.0, engine="legacy")
        assert_same_result(ref, res, 0.0, label="zero capacity")
        assert res.n_spilled == len(trace)

    @pytest.mark.parametrize("seed", (5, 6))
    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_binding_random_traces_sharded(self, seed, n_shards):
        """Tight capacity forces repeated retries; results stay exact."""
        trace = random_trace(seed, n=400)
        decisions = np.random.default_rng(seed).random(len(trace)) < 0.7
        cap = 10 * GIB
        a = simulate_sharded(
            trace, FixedPolicy(decisions), cap, n_shards, engine="legacy"
        )
        b = simulate_sharded(
            trace, FixedPolicy(decisions), cap, n_shards, engine="chunked"
        )
        assert_same_result(a, b, cap, label=f"seed={seed} n_shards={n_shards}")
        assert b.n_spilled > 0  # capacity really binds


class TestHeterogeneousCapacity:
    """Per-shard capacity vectors through both engines."""

    SKEWS = ((2.0, 1.0, 0.5), (4.0, 1.0, 1.0, 1.0, 0.0))

    @pytest.mark.parametrize("weights", SKEWS)
    def test_engines_agree_on_skewed_layouts(self, weights):
        trace = random_trace(11)
        n_shards = len(weights)
        total = 30 * GIB
        caps = total * np.asarray(weights) / sum(weights)
        for name, build in make_policy_builders(trace, 11).items():
            a = simulate_sharded(trace, build(), caps, n_shards, engine="legacy")
            b = simulate_sharded(trace, build(), caps, n_shards, engine="chunked")
            assert_same_result(a, b, total, label=f"{name} weights={weights}")
            assert np.array_equal(a.lane_capacities, caps)
            assert np.array_equal(b.lane_capacities, caps)
            assert a.capacity == pytest.approx(total)

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_uniform_vector_matches_scalar_split(self, engine):
        """An explicit even vector places exactly like the scalar split."""
        trace = random_trace(12)
        decisions = np.random.default_rng(12).random(len(trace)) < 0.7
        total, n_shards = 20 * GIB, 4
        r_scalar = simulate_sharded(
            trace, FixedPolicy(decisions), total, n_shards, engine=engine
        )
        r_vector = simulate_sharded(
            trace,
            FixedPolicy(decisions),
            np.full(n_shards, total / n_shards),
            n_shards,
            engine=engine,
        )
        assert np.array_equal(r_vector.ssd_fraction, r_scalar.ssd_fraction)
        assert r_vector.n_spilled == r_scalar.n_spilled
        assert r_vector.peak_ssd_used == pytest.approx(r_scalar.peak_ssd_used)
        assert np.array_equal(
            r_scalar.lane_capacities, np.full(n_shards, total / n_shards)
        )

    def test_context_reports_own_lane_capacity(self):
        """Each job's context carries *its* lane's slice, not an average."""
        from repro.storage import assign_shards
        from repro.storage.policy import Decision, PlacementPolicy

        trace = random_trace(13, n=80)
        caps = np.array([6.0, 2.0, 1.0]) * GIB
        shards = assign_shards(trace, 3)
        seen = {}

        class Probe(PlacementPolicy):
            name = "probe"

            def decide(self, job_index, ctx):
                seen[job_index] = ctx.capacity
                return Decision(want_ssd=False)

        simulate_sharded(trace, Probe(), caps, 3, engine="legacy")
        assert len(seen) == len(trace)
        for i, cap in seen.items():
            assert cap == pytest.approx(float(caps[shards[i]]))

    def test_skew_changes_placements_under_pressure(self):
        """A skewed layout really behaves differently from the even split."""
        trace = random_trace(14)
        decisions = np.ones(len(trace), dtype=bool)
        total = 0.05 * trace.peak_ssd_usage()
        even = simulate_sharded(trace, FixedPolicy(decisions), total, 4)
        skew = simulate_sharded(
            trace,
            FixedPolicy(decisions),
            total * np.array([0.7, 0.1, 0.1, 0.1]),
            4,
        )
        assert not np.array_equal(even.ssd_fraction, skew.ssd_fraction)

    def test_capacity_vector_validation(self, small_trace):
        policy = FirstFitPolicy()
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, np.array([1.0, 2.0]), n_shards=3)
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, np.array([1.0, -2.0]), n_shards=2)


class TestEdgeHardening:
    """Empty traces, more shards than jobs, and zero capacity."""

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    @pytest.mark.parametrize("n_shards", (1, 3))
    def test_empty_trace(self, engine, n_shards):
        trace = Trace([], name="empty")
        res = run_placement(
            trace,
            FixedPolicy(np.zeros(0, dtype=bool)),
            4 * GIB,
            n_shards=n_shards,
            engine=engine,
        )
        assert res.n_jobs == 0
        assert res.ssd_fraction.shape == (0,)
        assert res.n_spilled == 0
        assert res.peak_ssd_used == 0.0
        assert res.tco_savings_pct == 0.0

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_empty_trace_adaptive(self, engine):
        trace = Trace([], name="empty")
        policy = AdaptiveCategoryPolicy(np.zeros(0, dtype=int), 5)
        res = run_placement(trace, policy, 1 * GIB, n_shards=2, engine=engine)
        assert res.n_jobs == 0
        assert int(policy.shard_ssd_requested.sum()) == 0

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_more_shards_than_jobs(self, engine):
        trace = random_trace(15, n=5)
        for capacity in (40 * GIB, np.full(8, 5.0 * GIB)):
            a = simulate_sharded(trace, FirstFitPolicy(), capacity, 8, engine=engine)
            assert a.n_shards == 8
            assert a.n_jobs == 5
        r_legacy = simulate_sharded(trace, FirstFitPolicy(), 40 * GIB, 8, engine="legacy")
        r_chunked = simulate_sharded(trace, FirstFitPolicy(), 40 * GIB, 8, engine="chunked")
        assert_same_result(r_legacy, r_chunked, 40 * GIB, label="8 shards, 5 jobs")

    def test_zero_capacity_many_shards(self):
        trace = random_trace(16, n=100)
        for name, build in make_policy_builders(trace, 16).items():
            a = simulate_sharded(trace, build(), 0.0, 4, engine="legacy")
            b = simulate_sharded(trace, build(), 0.0, 4, engine="chunked")
            assert_same_result(a, b, 0.0, label=f"{name} zero capacity")
            assert a.peak_ssd_used == 0.0
            assert (a.ssd_fraction == 0.0).all()

    def test_zero_capacity_lane_spills_locally(self):
        """Jobs routed to a 0-byte lane spill even while peers have room."""
        from repro.storage import assign_shards

        trace = random_trace(17, n=200)
        caps = np.array([40.0, 0.0]) * GIB
        shards = assign_shards(trace, 2)
        res = simulate_sharded(
            trace, FixedPolicy(np.ones(len(trace), dtype=bool)), caps, 2
        )
        starved = shards == 1
        assert starved.any() and (~starved).any()
        assert (res.ssd_fraction[starved] == 0.0).all()
        assert (res.ssd_fraction[~starved] > 0.0).any()


class TestPerShardAct:
    """Per-caching-server adaptive thresholds (lane-wise Algorithm 1)."""

    def _policy(self, trace, seed, per_shard_act=True):
        cats = np.random.default_rng(seed + 1000).integers(0, 8, len(trace))
        params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
        return AdaptiveCategoryPolicy(cats, 8, params, per_shard_act=per_shard_act)

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_engines_agree(self, n_shards):
        trace = random_trace(21)
        cap = 8 * GIB
        p_legacy = self._policy(trace, 21)
        a = simulate_sharded(trace, p_legacy, cap, n_shards, engine="legacy")
        p_chunked = self._policy(trace, 21)
        b = simulate_sharded(trace, p_chunked, cap, n_shards, engine="chunked")
        assert_same_result(a, b, cap, label=f"per-shard ACT n_shards={n_shards}")
        if n_shards == 1:
            # One lane: the flag is inert, the global algorithm runs.
            assert p_legacy.act_lanes is None and p_chunked.act_lanes is None
        else:
            assert np.array_equal(p_legacy.act_lanes, p_chunked.act_lanes)
        assert len(p_legacy.trajectory) == len(p_chunked.trajectory)
        for ea, eb in zip(p_legacy.trajectory, p_chunked.trajectory):
            assert (ea.time, ea.act, ea.shard) == (eb.time, eb.act, eb.shard)
            assert ea.spillover == pytest.approx(eb.spillover, abs=1e-12)

    def test_engines_agree_on_skewed_layout(self):
        trace = random_trace(22)
        caps = 12 * GIB * np.array([2.0, 1.0, 0.5]) / 3.5
        a = simulate_sharded(trace, self._policy(trace, 22), caps, 3, engine="legacy")
        b = simulate_sharded(trace, self._policy(trace, 22), caps, 3, engine="chunked")
        assert_same_result(a, b, 12 * GIB, label="per-shard ACT skewed")

    def test_lane_thresholds_diverge_under_skew(self):
        """A starved lane raises its own ACT; an oversized one relaxes."""
        trace = random_trace(23)
        policy = self._policy(trace, 23)
        caps = np.array([1e18, 0.5 * GIB])
        simulate_sharded(trace, policy, caps, 2)
        assert policy.act_lanes is not None
        assert policy.act_lanes.size == 2
        assert int(policy.act_lanes[1]) > int(policy.act_lanes[0])
        shards_seen = {e.shard for e in policy.trajectory}
        assert shards_seen == {0, 1}

    def test_differs_from_global_threshold(self):
        """The ablation axis is real: per-shard ACT changes placements."""
        trace = random_trace(24)
        cap = 6 * GIB
        r_global = simulate_sharded(
            trace, self._policy(trace, 24, per_shard_act=False), cap, 4
        )
        r_lane = simulate_sharded(trace, self._policy(trace, 24), cap, 4)
        assert not np.array_equal(r_global.ssd_fraction, r_lane.ssd_fraction)

    def test_inert_without_sharding(self):
        """Unsharded runs with the flag set keep the global algorithm."""
        trace = random_trace(26)
        r_flag = simulate(trace, self._policy(trace, 26), 6 * GIB)
        r_plain = simulate(trace, self._policy(trace, 26, per_shard_act=False), 6 * GIB)
        assert np.array_equal(r_flag.ssd_fraction, r_plain.ssd_fraction)
        assert r_flag.n_spilled == r_plain.n_spilled

    def test_global_mode_untouched_by_default(self):
        trace = random_trace(25)
        policy = self._policy(trace, 25, per_shard_act=False)
        simulate_sharded(trace, policy, 10 * GIB, 4)
        assert policy.act_lanes is None
        assert all(e.shard == -1 for e in policy.trajectory)


class TestShardedSemantics:
    """Runtime-level invariants of the lane accountant."""

    def test_lane_capacity_context(self):
        """Policies see the shard-local slice, not the global pool."""
        seen = []

        class Probe(FixedPolicy):
            def decide_batch(self, first, ctx):
                seen.append((ctx.free_ssd, ctx.capacity))
                return super().decide_batch(first, ctx)

        trace = random_trace(8, n=50)
        simulate_sharded(
            trace, Probe(np.ones(len(trace), dtype=bool)), 8 * GIB, n_shards=4
        )
        assert seen and all(c == pytest.approx(2 * GIB) for _, c in seen)

    def test_fragmentation_only_loses(self):
        trace = random_trace(9)
        decisions = np.ones(len(trace), dtype=bool)
        cap = 0.05 * trace.peak_ssd_usage()
        whole = simulate_sharded(trace, FixedPolicy(decisions), cap, 1)
        split = simulate_sharded(trace, FixedPolicy(decisions), cap, 8)
        assert split.tcio_savings_pct <= whole.tcio_savings_pct + 1e-9
        assert split.n_shards == 8
