"""Unified shard-aware placement runtime.

Three pillars:

1. ``n_shards=1`` is :func:`repro.storage.simulate` — both engines,
   same results (the legacy lane loop is the exact per-job reference).
2. Sharded chunked == sharded legacy for every batched policy, across
   capacity regimes, including the policy-visible feedback (adaptive
   trajectory and per-shard counters).
3. The re-entrant retry: a capacity-binding chunk is no longer replayed
   wholesale through the per-candidate loop — the clean prefix and the
   post-binding remainder are admitted vectorized.
"""

import numpy as np
import pytest

from repro.baselines import (
    CategoryAdmissionPolicy,
    FirstFitPolicy,
    ImitationPolicy,
    LifetimeModel,
    LifetimePolicy,
)
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.cost import DEFAULT_RATES
from repro.storage import (
    FixedPolicy,
    run_placement,
    simulate,
    simulate_sharded,
)
from repro.units import GIB
from repro.workloads import Trace
from repro.workloads.features import extract_features

from helpers import make_job


def random_trace(seed: int, n: int = 600, span: float = 100_000.0) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, span, n))
    jobs = [
        make_job(
            i,
            arrival=float(arrivals[i]),
            duration=float(rng.uniform(30.0, span / 8)),
            size=float(rng.uniform(0.05, 25.0) * GIB),
            pipeline=f"pipe{int(rng.integers(0, 10))}",
        )
        for i in range(n)
    ]
    return Trace(jobs, name=f"rand{seed}")


def assert_same_result(a, b, capacity, label=""):
    np.testing.assert_allclose(
        b.ssd_fraction, a.ssd_fraction, atol=1e-9, rtol=1e-9, err_msg=label
    )
    assert b.n_ssd_requested == a.n_ssd_requested, label
    assert b.n_spilled == a.n_spilled, label
    assert b.realized_tco == pytest.approx(a.realized_tco, rel=1e-9), label
    assert b.realized_hdd_tcio == pytest.approx(a.realized_hdd_tcio, rel=1e-9), label
    assert abs(b.peak_ssd_used - a.peak_ssd_used) <= max(
        1e-6, 1e-9 * max(capacity, 1.0)
    ), label


def make_policy_builders(trace, seed):
    """One builder per batched policy family."""
    rng = np.random.default_rng(seed + 100)
    cats = rng.integers(0, 8, len(trace))
    params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
    train = random_trace(seed + 50)
    feats = extract_features(trace, DEFAULT_RATES)
    lt = LifetimeModel(n_rounds=3).fit(feats, trace.durations)
    decisions = rng.random(len(trace)) < 0.5
    return {
        "adaptive": lambda: AdaptiveCategoryPolicy(cats, 8, params),
        "heuristic": lambda: CategoryAdmissionPolicy(train, refresh_interval=9000.0),
        "firstfit": FirstFitPolicy,
        "fixed": lambda: FixedPolicy(decisions),
        "lifetime": lambda: LifetimePolicy(lt, feats),
    }


class TestSingleShardIsSimulate:
    """``n_shards=1`` must reproduce ``simulate`` on both engines."""

    @pytest.mark.parametrize("engine", ("legacy", "chunked"))
    def test_bit_equal_placements(self, engine):
        trace = random_trace(0)
        cats = np.random.default_rng(7).integers(0, 6, len(trace))
        cap = 30 * GIB
        r_sim = simulate(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, engine=engine
        )
        r_one = simulate_sharded(
            trace, AdaptiveCategoryPolicy(cats, 6), cap, n_shards=1, engine=engine
        )
        # Same code path by construction: exact equality, not tolerance.
        assert np.array_equal(r_one.ssd_fraction, r_sim.ssd_fraction)
        assert r_one.realized_tco == r_sim.realized_tco
        assert r_one.peak_ssd_used == r_sim.peak_ssd_used
        assert r_one.n_spilled == r_sim.n_spilled
        assert r_one.n_shards == r_sim.n_shards == 1

    def test_run_placement_validates(self, small_trace):
        policy = FirstFitPolicy()
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, -1.0)
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, 1 * GIB, n_shards=0)
        with pytest.raises(ValueError):
            run_placement(small_trace, policy, 1 * GIB, engine="warp")


CAPACITIES = (0.0, 2 * GIB, 40 * GIB, 400 * GIB, 1e18)


class TestShardedEngineEquivalence:
    """Chunked sharded == legacy sharded for every batched policy."""

    @pytest.mark.parametrize("n_shards", (1, 3, 8))
    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_all_policies(self, n_shards, capacity):
        trace = random_trace(1)
        for name, build in make_policy_builders(trace, 1).items():
            r_legacy = simulate_sharded(
                trace, build(), capacity, n_shards, engine="legacy"
            )
            r_chunked = simulate_sharded(
                trace, build(), capacity, n_shards, engine="chunked"
            )
            assert_same_result(
                r_legacy, r_chunked, capacity,
                label=f"{name} n_shards={n_shards} cap={capacity:.3g}",
            )

    def test_imitation_rides_the_fast_path(self):
        """ImitationPolicy's decide_batch: whole-trace replay chunks."""
        trace = random_trace(2, n=200)

        class _StubModel:
            def predict(self, feats):
                return np.arange(len(trace)) % 3 == 0

        policy = ImitationPolicy(_StubModel(), features=None)
        calls = []
        orig = policy.decide_batch
        policy.decide_batch = lambda first, ctx: (
            calls.append(first) or orig(first, ctx)
        )
        cap = 20 * GIB
        r_fast = simulate(trace, policy, cap)
        assert calls, "auto engine must use the batch protocol"
        r_ref = simulate(
            trace, ImitationPolicy(_StubModel(), features=None), cap, engine="legacy"
        )
        assert_same_result(r_ref, r_fast, cap, label="imitation")
        # Sharded, both engines:
        for n_shards in (2, 5):
            a = simulate_sharded(
                trace, ImitationPolicy(_StubModel(), None), cap, n_shards,
                engine="legacy",
            )
            b = simulate_sharded(
                trace, ImitationPolicy(_StubModel(), None), cap, n_shards,
                engine="chunked",
            )
            assert_same_result(a, b, cap, label=f"imitation n_shards={n_shards}")


class TestFeedbackPathUnified:
    """Both engines must feed the policy identical outcomes."""

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_adaptive_trajectory_and_shard_counters(self, n_shards):
        trace = random_trace(3)
        cats = np.random.default_rng(3).integers(0, 8, len(trace))
        params = AdaptiveParams(decision_interval=700.0, lookback_window=4000.0)
        cap = 25 * GIB

        p_legacy = AdaptiveCategoryPolicy(cats, 8, params)
        simulate_sharded(trace, p_legacy, cap, n_shards, engine="legacy")
        p_chunked = AdaptiveCategoryPolicy(cats, 8, params)
        simulate_sharded(trace, p_chunked, cap, n_shards, engine="chunked")

        assert len(p_legacy.trajectory) == len(p_chunked.trajectory)
        for a, b in zip(p_legacy.trajectory, p_chunked.trajectory):
            assert a.time == b.time
            assert a.act == b.act
            assert a.spillover == pytest.approx(b.spillover, abs=1e-12)

        # The per-shard feedback (observe vs observe_batch) is identical.
        assert np.array_equal(p_legacy.shard_spills, p_chunked.shard_spills)
        assert np.array_equal(
            p_legacy.shard_ssd_requested, p_chunked.shard_ssd_requested
        )
        assert p_legacy.shard_spills.size == n_shards
        assert int(p_legacy.shard_ssd_requested.sum()) > 0

    def test_spills_spread_across_shards(self):
        """Under pressure, every loaded shard reports its own spills."""
        trace = random_trace(4)
        cats = np.full(len(trace), 5)
        policy = AdaptiveCategoryPolicy(cats, 8)
        res = simulate_sharded(trace, policy, 4 * GIB, n_shards=4)
        assert res.n_spilled > 0
        assert int(policy.shard_spills.sum()) == res.n_spilled
        assert (policy.shard_spills > 0).sum() >= 2


class TestReentrantRetry:
    """Binding chunks no longer fall back wholesale to the scalar loop."""

    def _binding_setting(self, n=200, monster=100):
        # One chunk (static replay), capacity binds exactly once in the
        # middle: short 1 GiB jobs stream through a 16 GiB pool, and
        # job ``monster`` is an 80 GiB job that binds.  The chunk is
        # larger than the scalar window, so the retry must accept the
        # prefix and the post-window remainder vectorized.
        jobs = []
        for i in range(n):
            size = 80 * GIB if i == monster else 1 * GIB
            jobs.append(
                make_job(i, arrival=10.0 * i, duration=40.0, size=size)
            )
        trace = Trace(jobs)
        return trace, np.ones(len(trace), dtype=bool)

    def test_binding_chunk_partial_scalar(self):
        trace, decisions = self._binding_setting()
        cap = 16 * GIB
        res = simulate(trace, FixedPolicy(decisions), cap, engine="chunked")
        ref = simulate(trace, FixedPolicy(decisions), cap, engine="legacy")
        assert_same_result(ref, res, cap, label="binding chunk")
        assert res.n_spilled == 1
        # The retry replays only a window around the binding candidate;
        # the prefix and the post-binding remainder stay vectorized.
        assert 0 < res.scalar_fallback_jobs < res.n_ssd_requested

    def test_clean_chunk_reports_zero_scalar(self):
        trace, decisions = self._binding_setting()
        res = simulate(trace, FixedPolicy(decisions), 1e18, engine="chunked")
        assert res.scalar_fallback_jobs == 0
        assert res.n_spilled == 0

    def test_zero_capacity_stays_exact(self):
        trace, decisions = self._binding_setting()
        res = simulate(trace, FixedPolicy(decisions), 0.0, engine="chunked")
        ref = simulate(trace, FixedPolicy(decisions), 0.0, engine="legacy")
        assert_same_result(ref, res, 0.0, label="zero capacity")
        assert res.n_spilled == len(trace)

    @pytest.mark.parametrize("seed", (5, 6))
    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_binding_random_traces_sharded(self, seed, n_shards):
        """Tight capacity forces repeated retries; results stay exact."""
        trace = random_trace(seed, n=400)
        decisions = np.random.default_rng(seed).random(len(trace)) < 0.7
        cap = 10 * GIB
        a = simulate_sharded(
            trace, FixedPolicy(decisions), cap, n_shards, engine="legacy"
        )
        b = simulate_sharded(
            trace, FixedPolicy(decisions), cap, n_shards, engine="chunked"
        )
        assert_same_result(a, b, cap, label=f"seed={seed} n_shards={n_shards}")
        assert b.n_spilled > 0  # capacity really binds


class TestShardedSemantics:
    """Runtime-level invariants of the lane accountant."""

    def test_lane_capacity_context(self):
        """Policies see the shard-local slice, not the global pool."""
        seen = []

        class Probe(FixedPolicy):
            def decide_batch(self, first, ctx):
                seen.append((ctx.free_ssd, ctx.capacity))
                return super().decide_batch(first, ctx)

        trace = random_trace(8, n=50)
        simulate_sharded(
            trace, Probe(np.ones(len(trace), dtype=bool)), 8 * GIB, n_shards=4
        )
        assert seen and all(c == pytest.approx(2 * GIB) for _, c in seen)

    def test_fragmentation_only_loses(self):
        trace = random_trace(9)
        decisions = np.ones(len(trace), dtype=bool)
        cap = 0.05 * trace.peak_ssd_usage()
        whole = simulate_sharded(trace, FixedPolicy(decisions), cap, 1)
        split = simulate_sharded(trace, FixedPolicy(decisions), cap, 8)
        assert split.tcio_savings_pct <= whole.tcio_savings_pct + 1e-9
        assert split.n_shards == 8
