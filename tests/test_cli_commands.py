"""CLI subcommands exercised against a small monkeypatched cluster."""

import pytest

import repro.analysis as analysis
from repro.cli import main
from repro.core import prepare_cluster


@pytest.fixture()
def small_standard_cluster(two_week_trace, monkeypatch):
    cluster = prepare_cluster(two_week_trace)
    monkeypatch.setattr(analysis, "standard_cluster", lambda *a, **k: cluster)
    return cluster


class TestSweepCommand:
    def test_sweep_prints_series(self, small_standard_cluster, capsys):
        assert main(["sweep", "--cluster", "0", "--quotas", "0.05", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Adaptive Ranking" in out
        assert "Oracle TCO" in out
        assert "5%" in out and "50%" in out


class TestHeadroomCommand:
    def test_headroom_reports_ratio(self, small_standard_cluster, capsys):
        assert main(["headroom", "--cluster", "0", "--quota", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "oracle:" in out
        assert "headroom:" in out


class TestDeployCommand:
    def test_deploy_reports_savings(self, small_standard_cluster, capsys):
        assert main(["deploy", "--cluster", "0", "--quota", "0.05",
                     "--categories", "6"]) == 0
        out = capsys.readouterr().out
        assert "TCO savings" in out
        assert "top-1 accuracy" in out
