"""Public API surface: everything in __all__ is importable and real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.cost",
    "repro.workloads",
    "repro.ml",
    "repro.storage",
    "repro.baselines",
    "repro.core",
    "repro.oracle",
    "repro.prototype",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
