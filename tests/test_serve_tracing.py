"""Deterministic per-request tracing: sampling, the bounded ring, and
the property that the traced span stream is bit-identical across
engine mode x worker count x transport and across WAL recovery.

Sampling is a pure hash of the job id (never Python's salted
``hash()``), timestamps are logical, and span contents come from the
bit-identical decision stream — so two services fed the same stream
trace exactly the same jobs with exactly the same events.  Fleet
workers keep their own op-span rings, gathered through a non-mutating
transport op that never touches the per-worker WALs.
"""

import json

import numpy as np
import pytest

from repro.serve import (
    SAMPLE_MODULUS,
    FleetRouter,
    PlacementService,
    Tracer,
    sample_hash,
    sample_mask,
)

from test_serve_service import make_policy_builders, random_trace

CAP = 55e9


@pytest.fixture(scope="module")
def trace():
    return random_trace(21, n=240)


@pytest.fixture(scope="module")
def builders(trace):
    return make_policy_builders(trace, 21)


class TestSampling:
    def test_hash_is_stable_and_bounded(self):
        seen = {sample_hash(i) for i in range(200)}
        assert all(0 <= h < SAMPLE_MODULUS for h in seen)
        # Knuth's multiplicative hash scatters consecutive ids.
        assert len(seen) == 200
        assert sample_hash(42) == sample_hash(42)

    def test_non_integer_ids_fall_back_to_crc(self):
        a, b = sample_hash("job-a"), sample_hash("job-b")
        assert a != b
        assert 0 <= a < SAMPLE_MODULUS
        assert sample_hash("job-a") == a
        # Integer-like strings take the integer path: same decision as
        # the raw int id.
        assert sample_hash("17") == sample_hash(17)

    def test_mask_matches_scalar_hash(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 2**31, 500)
        threshold = SAMPLE_MODULUS // 4
        mask = sample_mask(ids, threshold)
        want = np.array(
            [sample_hash(int(j)) < threshold for j in ids]
        )
        np.testing.assert_array_equal(mask, want)

    def test_sample_bounds(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Tracer(sample=1.5)
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)
        assert Tracer(sample=0.0).threshold == 0
        assert Tracer(sample=1.0).threshold == SAMPLE_MODULUS


class TestRing:
    def test_bounded_overwrite_oldest_first(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.begin(i, float(i))
        assert tr.n_spans == 10
        assert tr.n_evicted == 6
        spans = tr.spans()
        assert [s["job_id"] for s in spans] == [6, 7, 8, 9]
        # Oldest first: submit timestamps ascend.
        assert [s["events"][0][1] for s in spans] == [6.0, 7.0, 8.0, 9.0]

    def test_event_on_evicted_span_is_noop(self):
        tr = Tracer(capacity=2)
        tr.begin(0, 0.0)
        tr.begin(1, 1.0)
        tr.begin(2, 2.0)  # evicts job 0
        tr.event(0, "complete", 9.0)
        tr.event(1, "complete", 9.0, freed=5)
        assert [s["job_id"] for s in tr.spans()] == [1, 2]
        span1 = tr.spans()[0]
        assert span1["events"][-1] == ["complete", 9.0, {"freed": 5}]

    def test_export_jsonl_round_trips_numpy_attrs(self, tmp_path):
        tr = Tracer()
        tr.begin(np.int64(3), np.float64(1.5), lane=np.int64(2))
        tr.event(3, "place", 2.0, frac=np.float64(0.25),
                 ssd=np.bool_(True))
        path = tmp_path / "spans.jsonl"
        assert tr.export_jsonl(path) == 1
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert lines[0]["job_id"] == 3
        assert lines[0]["events"][1] == [
            "place", 2.0, {"frac": 0.25, "ssd": True}
        ]

    def test_begin_returns_live_span(self):
        tr = Tracer()
        span = tr.begin(7, 1.0, index=7)
        tr.event(7, "admit", 1.0, lane=0)
        assert span["events"][0] == ["submit", 1.0, {"index": 7}]
        assert span["events"][1][0] == "admit"


def _feed_traced(svc, trace, *, batch=17):
    """Micro-batches with a drain before the completes, so every mode
    has the span open before its completion event arrives."""
    jobs = trace.jobs
    n = len(jobs)
    for lo in range(0, n, batch):
        hi = min(lo + batch, n)
        svc.submit_jobs(list(jobs[lo:hi]))
        svc.drain()
        for k in range(lo, hi):
            if k % 13 == 0:
                svc.complete(jobs[k].job_id)
    svc.drain()


class TestServiceSpans:
    def _run(self, trace, builders, pname, mode, fleet=None, sample=0.25):
        tr = Tracer(sample=sample)
        if fleet is None:
            svc = PlacementService(
                builders[pname](), CAP, 4, mode=mode, tracer=tr
            )
        else:
            workers, transport = fleet
            svc = FleetRouter(
                builders[pname](), CAP, 4, mode=mode,
                n_workers=workers, transport=transport, tracer=tr,
            )
        svc.open(trace)
        _feed_traced(svc, trace)
        spans = [json.loads(json.dumps(s, default=float))
                 for s in tr.spans()]
        counts = (tr.n_spans, tr.n_evicted)
        if fleet is not None:
            svc.close()
        return spans, counts

    def test_sampled_set_and_span_contents(self, trace, builders):
        spans, (n_spans, n_evicted) = self._run(
            trace, builders, "adaptive", "batch"
        )
        assert n_evicted == 0
        assert 0 < n_spans < len(trace)  # 25% sampling really samples
        ids = {s["job_id"] for s in spans}
        threshold = Tracer(sample=0.25).threshold
        assert ids == {
            i for i in range(len(trace)) if sample_hash(i) < threshold
        }
        by_id = {s["job_id"]: s for s in spans}
        for s in spans:
            names = [ev[0] for ev in s["events"]]
            assert names[0] == "submit"
            assert "categorize" in names  # adaptive policy has categories
            assert "admit" in names
        # Completed sampled jobs carry the completion with freed bytes.
        completed = [i for i in range(0, len(trace), 13) if i in by_id]
        assert completed, "sampling must hit some completed jobs"
        for i in completed:
            last = by_id[i]["events"][-1]
            assert last[0] == "complete" and last[2]["freed"] >= 0

    @pytest.mark.parametrize("pname", ("adaptive", "firstfit"))
    def test_bit_identical_across_modes_and_fleet(
        self, trace, builders, pname
    ):
        ref, ref_counts = self._run(trace, builders, pname, "batch")
        for mode, fleet in (
            ("scalar", None),
            ("batch", (3, "inprocess")),
            ("batch", (3, "subprocess")),
        ):
            spans, counts = self._run(trace, builders, pname, mode, fleet)
            label = f"{pname}/{mode}/{fleet}"
            assert spans == ref, label
            assert counts == ref_counts, label

    def test_sample_zero_records_nothing(self, trace, builders):
        spans, (n_spans, _) = self._run(
            trace, builders, "firstfit", "batch", sample=0.0
        )
        assert spans == [] and n_spans == 0

    def test_custom_job_ids_take_the_scalar_path(self, trace, builders):
        """Non-auto ids disable the vectorized arange mask; the
        fallback scan must make identical sampling decisions."""
        tr = Tracer(sample=0.25)
        svc = PlacementService(
            builders["firstfit"](), CAP, 4, mode="batch", tracer=tr
        )
        svc.open()
        jobs = [j for j in trace.jobs[:80]]
        offset_ids = [1000 + j.job_id for j in jobs]
        for lo in range(0, 80, 16):
            svc.submit_batch(
                trace.arrivals[lo:lo + 16], trace.durations[lo:lo + 16],
                trace.sizes[lo:lo + 16], trace.read_bytes[lo:lo + 16],
                trace.write_bytes[lo:lo + 16], trace.read_ops[lo:lo + 16],
                pipelines=trace.pipelines[lo:lo + 16],
                job_ids=offset_ids[lo:lo + 16],
            )
        svc.drain()
        assert not svc.log._ids_auto
        threshold = tr.threshold
        want = {i for i in offset_ids if sample_hash(i) < threshold}
        assert {s["job_id"] for s in tr.spans()} == want

    def test_wal_recovery_regenerates_spans(self, trace, builders, tmp_path):
        """Checkpoint + WAL replay re-runs the lost submissions through
        the same paths, so the recovered ring equals the uninterrupted
        one — pre-checkpoint spans ride the snapshot, post-checkpoint
        spans regenerate during replay."""
        ref, ref_counts = self._run(
            trace, builders, "adaptive", "batch", sample=1.0
        )

        wal = str(tmp_path / "t.wal")
        ckpt = str(tmp_path / "t.ckpt")
        svc = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch",
            tracer=Tracer(sample=1.0), wal=wal,
        )
        svc.open(trace)
        jobs = trace.jobs
        n = len(jobs)
        ckpt_at, crash_at = 68, 136  # batch-of-17 boundaries
        for lo in range(0, crash_at, 17):
            hi = lo + 17
            svc.submit_jobs(list(jobs[lo:hi]))
            svc.drain()
            for k in range(lo, hi):
                if k % 13 == 0:
                    svc.complete(jobs[k].job_id)
            if hi == ckpt_at:
                svc.checkpoint(ckpt)
        svc.wal.close()  # crash: 4 batches past the checkpoint are lost

        rec = PlacementService.recover(ckpt, wal)
        assert rec.tracer is not None
        assert rec.tracer.n_spans == crash_at
        for lo in range(crash_at, n, 17):
            hi = min(lo + 17, n)
            rec.submit_jobs(list(jobs[lo:hi]))
            rec.drain()
            for k in range(lo, hi):
                if k % 13 == 0:
                    rec.complete(jobs[k].job_id)
        rec.drain()
        spans = [json.loads(json.dumps(s, default=float))
                 for s in rec.tracer.spans()]
        assert spans == ref
        assert (rec.tracer.n_spans, rec.tracer.n_evicted) == ref_counts

    def test_export_trace_requires_tracer(self, trace, builders, tmp_path):
        svc = PlacementService(builders["firstfit"](), CAP, 4, mode="batch")
        with pytest.raises(RuntimeError, match="no tracer"):
            svc.export_trace(tmp_path / "x.jsonl")
        traced = PlacementService(
            builders["firstfit"](), CAP, 4, mode="batch", tracer=Tracer()
        )
        traced.open(trace)
        traced.submit_jobs(list(trace.jobs[:40]))
        traced.drain()
        out = tmp_path / "spans.jsonl"
        assert traced.export_trace(out) == 40
        assert len(out.read_text().splitlines()) == 40


class TestWorkerOpSpans:
    def _fleet(self, trace, builders, tmp_path, checkpoint_every=64):
        svc = FleetRouter(
            builders["firstfit"](), CAP, 4, mode="batch",
            n_workers=3, worker_dir=str(tmp_path),
            worker_checkpoint_every=checkpoint_every,
        )
        svc.open(trace)
        _feed_traced(svc, trace)
        return svc

    def test_gather_is_non_mutating(self, trace, builders, tmp_path):
        svc = self._fleet(trace, builders, tmp_path)
        try:
            seqs_before = [w.seq for w in svc.pool.wals]
            first = svc.worker_op_spans()
            assert first, "data-plane ops must have recorded spans"
            second = svc.worker_op_spans()
            # Observing spans writes nothing to any worker WAL and does
            # not grow the rings: a second gather is identical.
            assert [w.seq for w in svc.pool.wals] == seqs_before
            assert second == first
        finally:
            svc.close()

    def test_span_shape_and_ordering(self, trace, builders, tmp_path):
        from repro.serve.worker import PlacementWorker

        svc = self._fleet(trace, builders, tmp_path)
        try:
            spans = svc.worker_op_spans()
            per_worker: dict = {}
            for s in spans:
                assert set(s) == {"worker", "op", "seq", "t", "n"}
                assert s["op"] in PlacementWorker._SPAN_OPS
                per_worker.setdefault(s["worker"], []).append(s["seq"])
            assert set(per_worker) == {0, 1, 2}
            for w, seqs in per_worker.items():
                assert seqs == sorted(seqs), f"worker {w} out of order"
        finally:
            svc.close()

    def test_recovered_worker_ring_restarts(self, trace, builders, tmp_path):
        """Op spans are auxiliary telemetry, not checkpointed: a worker
        rebuilt from checkpoint + WAL reports a fresh ring while the
        authoritative counters replay exactly.  With a checkpoint after
        every mutating op the replay suffix is empty, so the rebuilt
        ring holds nothing at all."""
        svc = self._fleet(trace, builders, tmp_path, checkpoint_every=1)
        try:
            before = svc.metrics()
            svc.kill_worker(1)
            svc.recover_worker(1)
            spans = svc.worker_op_spans()
            w1 = [s for s in spans if s["worker"] == 1]
            assert w1 == []
            after = svc.metrics()
            assert after["serve_decided_total"] == before["serve_decided_total"]
            assert after["serve_worker_recoveries"] == 1
        finally:
            svc.close()
