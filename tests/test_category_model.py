"""CategoryModel: labeler + classifier bundle, timing, accuracy."""

import numpy as np
import pytest

from repro.config import ModelParams
from repro.core import CategoryModel, prepare_cluster
from repro.workloads import extract_features


@pytest.fixture(scope="module")
def cluster(two_week_trace):
    return prepare_cluster(two_week_trace)


@pytest.fixture(scope="module")
def fitted(cluster):
    model = CategoryModel(ModelParams(n_categories=8, n_rounds=6, max_depth=4))
    model.fit(cluster.train, cluster.features_train)
    return model


class TestCategoryModel:
    def test_predictions_in_range(self, fitted, cluster):
        pred = fitted.predict(cluster.features_test)
        assert pred.min() >= 0
        assert pred.max() < 8

    def test_accuracy_beats_chance(self, fitted, cluster):
        acc = fitted.top1_accuracy(cluster.test, cluster.features_test)
        labels = fitted.labels_for(cluster.test)
        majority = np.bincount(labels).max() / len(labels)
        assert acc > max(1.0 / 8, 0.5 * majority)

    def test_labels_match_labeler(self, fitted, cluster):
        labels = fitted.labels_for(cluster.train)
        savings = cluster.train.costs().savings
        assert (labels[savings < 0] == 0).all()

    def test_fit_empty_raises(self, cluster):
        from repro.workloads import Trace

        model = CategoryModel(ModelParams(n_categories=4, n_rounds=2))
        with pytest.raises(ValueError):
            model.fit(Trace([]), cluster.features_train.take(np.array([], dtype=int)))

    def test_fit_misaligned_raises(self, cluster):
        model = CategoryModel(ModelParams(n_categories=4, n_rounds=2))
        with pytest.raises(ValueError):
            model.fit(cluster.train, cluster.features_test)

    def test_predict_before_fit_raises(self, cluster):
        with pytest.raises(RuntimeError):
            CategoryModel().predict(cluster.features_test)

    def test_predict_timed_agrees_with_batch(self, fitted, cluster):
        subset = cluster.features_test.take(np.arange(20))
        timed, timing = fitted.predict_timed(subset)
        batch = fitted.predict(subset)
        assert np.array_equal(timed, batch)
        assert timing.per_job_seconds.shape == (20,)
        assert (timing.per_job_seconds > 0).all()
        assert timing.cumulative_seconds[-1] == pytest.approx(
            timing.per_job_seconds.sum()
        )

    def test_inference_is_fast(self, fitted, cluster):
        """Figure 9a's point: per-job inference is milliseconds-scale."""
        subset = cluster.features_test.take(np.arange(50))
        _, timing = fitted.predict_timed(subset)
        assert timing.mean_seconds < 0.05  # well under 50 ms/job
