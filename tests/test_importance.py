"""Feature-group importance via AUC decrease (Figure 9c machinery)."""

import numpy as np
import pytest

from repro.ml import feature_group_importance
from repro.workloads.features import FeatureMatrix


def synthetic_features(n=1500, seed=0):
    """Two groups: group A carries all signal, group C is pure noise."""
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=(n, 2))
    noise = rng.normal(size=(n, 2))
    y = (signal[:, 0] + 0.5 * signal[:, 1] > 0).astype(int)
    X = np.hstack([signal, noise])
    fm = FeatureMatrix(
        X=X,
        names=("s0", "s1", "n0", "n1"),
        groups=("A", "A", "C", "C"),
    )
    return fm, y


class TestFeatureGroupImportance:
    def test_signal_group_dominates(self):
        fm, y = synthetic_features()
        half = len(y) // 2
        imp = feature_group_importance(
            fm.take(np.arange(half)),
            y[:half],
            fm.take(np.arange(half, len(y))),
            y[half:],
            categories=np.array([1]),
            groups=("A", "C"),
            n_rounds=6,
            max_depth=3,
        )
        a_score = imp.scores[0, 0]
        c_score = imp.scores[1, 0]
        assert a_score > c_score

    def test_scores_normalized_per_category(self):
        fm, y = synthetic_features()
        half = len(y) // 2
        imp = feature_group_importance(
            fm.take(np.arange(half)),
            y[:half],
            fm.take(np.arange(half, len(y))),
            y[half:],
            categories=np.array([0, 1]),
            groups=("A", "C"),
            n_rounds=4,
            max_depth=3,
        )
        sums = imp.scores.sum(axis=0)
        for s in sums:
            assert s == pytest.approx(1.0, abs=1e-9) or s == 0.0

    def test_missing_group_scores_zero(self):
        fm, y = synthetic_features()
        half = len(y) // 2
        imp = feature_group_importance(
            fm.take(np.arange(half)),
            y[:half],
            fm.take(np.arange(half, len(y))),
            y[half:],
            categories=np.array([1]),
            groups=("A", "C", "T"),  # no "T" columns exist
            n_rounds=3,
            max_depth=2,
        )
        t_idx = imp.groups.index("T")
        assert imp.scores[t_idx, 0] == 0.0

    def test_auc_full_reported(self):
        fm, y = synthetic_features()
        half = len(y) // 2
        imp = feature_group_importance(
            fm.take(np.arange(half)),
            y[:half],
            fm.take(np.arange(half, len(y))),
            y[half:],
            categories=np.array([1]),
            groups=("A",),
            n_rounds=6,
            max_depth=3,
        )
        assert imp.raw_auc_full[0] > 0.8
