"""Live metrics surface: histogram math, registry, scrape endpoint,
and the property that the snapshot equals the roll-up.

The load-bearing claim: every counter the service exposes is *pinned*
to the same authoritative sources the end-of-run
:class:`~repro.storage.engine.SimResult` is computed from, so after
``drain()`` the metrics snapshot is field-for-field consistent with the
roll-up — across policy x engine mode x worker count x transport,
through a mid-run capacity shock, and across WAL recovery.  Histogram
bucket counts are integers, so fleet merge is exact, associative and
commutative regardless of worker reply order.
"""

import pickle
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    FleetRouter,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    PlacementService,
    merge_states,
)
from repro.serve.metrics import LATENCY_BUCKETS_SECONDS, SIZE_BUCKETS_JOBS

from test_serve_service import make_policy_builders, random_trace

CAP = 55e9


@pytest.fixture(scope="module")
def trace():
    return random_trace(21, n=240)


@pytest.fixture(scope="module")
def builders(trace):
    return make_policy_builders(trace, 21)


def _hist(buckets=(1.0, 2.0, 5.0)) -> Histogram:
    return Histogram("h", buckets=buckets)


class TestHistogramMath:
    def test_edge_placement_is_le(self):
        """Prometheus le semantics: a value exactly on an edge belongs
        to that edge's bucket."""
        h = _hist()
        for v in (0.5, 1.0):
            h.observe(v)
        assert h.counts == [2, 0, 0, 0]
        h.observe(1.0000001)
        assert h.counts == [2, 1, 0, 0]
        h.observe(2.0)
        h.observe(5.0)
        assert h.counts == [2, 2, 1, 0]
        h.observe(7.5)  # overflow bucket
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.max == 7.5

    def test_cumulative_snapshot_buckets(self):
        h = _hist()
        for v in (0.5, 1.5, 1.5, 3.0, 99.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [
            (1.0, 1), (2.0, 3), (5.0, 4), (float("inf"), 5)
        ]
        assert snap["count"] == 5
        assert snap["max"] == 99.0

    def test_percentiles_return_bucket_edges(self):
        h = _hist()
        for _ in range(99):
            h.observe(0.5)
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 1.0
        h.observe(4.0)  # the 100th observation, rank 100 = p100..p99.5
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 1.0
        assert h.percentile(100) == 5.0

    def test_overflow_percentile_reports_tracked_max(self):
        h = _hist()
        h.observe(123.0)
        assert h.percentile(50) == 123.0
        assert h.percentile(99) == 123.0

    def test_empty_histogram(self):
        h = _hist()
        assert h.percentile(50) == 0.0
        assert h.snapshot()["count"] == 0
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_trailing_inf_bucket_is_implicit(self):
        a = Histogram("h", buckets=(1.0, 2.0, float("inf")))
        b = Histogram("h", buckets=(1.0, 2.0))
        assert a.edges == b.edges
        assert len(a.counts) == 3

    def test_merge_hand_built(self):
        a, b = _hist(), _hist()
        for v in (0.1, 1.5, 9.0):
            a.observe(v)
        for v in (1.5, 4.0):
            b.observe(v)
        a.merge(b)
        assert a.counts == [1, 2, 1, 1]
        assert a.count == 5
        assert a.sum == pytest.approx(0.1 + 1.5 + 9.0 + 1.5 + 4.0)
        assert a.max == 9.0

    def test_merge_rejects_different_edges(self):
        a = _hist((1.0, 2.0))
        b = _hist((1.0, 3.0))
        with pytest.raises(ValueError, match="edges differ"):
            a.merge(b)

    def test_merge_associative_commutative_randomized(self):
        """Any grouping and order of partial merges yields identical
        bucket counts and percentiles (integer arithmetic)."""
        rng = np.random.default_rng(0)
        edges = tuple(sorted(rng.uniform(1e-6, 10.0, 6)))
        for _ in range(20):
            parts = []
            for _ in range(4):
                h = Histogram("h", buckets=edges)
                # Log-uniform values spanning under/over the edge range.
                for v in 10.0 ** rng.uniform(-7, 2, rng.integers(0, 40)):
                    h.observe(float(v))
                parts.append(h)

            def fold(order):
                acc = Histogram("h", buckets=edges)
                for i in order:
                    acc.merge(parts[i])
                return acc

            left = fold([0, 1, 2, 3])
            # ((0+1)+(2+3)) — a different association.
            ab = fold([0, 1])
            cd = fold([2, 3])
            ab.merge(cd)
            shuffled = fold(list(rng.permutation(4)))
            for other in (ab, shuffled):
                assert other.counts == left.counts
                assert other.count == left.count
                assert other.max == left.max
                for q in (0, 25, 50, 90, 99, 100):
                    assert other.percentile(q) == left.percentile(q)


class TestHistogramQuantile:
    """`quantile(q)` interpolates within integer buckets — the alerting
    layer's histogram reader, so it must be exact about which bucket a
    rank lands in and deterministic on merged fleet counts."""

    def test_interpolates_within_the_bucket(self):
        h = _hist((1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.5, 1.5, 4.0):  # counts [1, 3, 1, 0]
            h.observe(v)
        # rank 2.5 of 5 lands mid-bucket (1, 2]: cum 1, 1.5 of 3 in.
        assert h.quantile(0.5) == pytest.approx(1.0 + (2.5 - 1) / 3)
        # rank 1 lands in the first bucket, interpolated from 0.
        assert h.quantile(0.0) == pytest.approx(1.0 * 1 / 1)
        assert h.quantile(1.0) == pytest.approx(5.0)

    def test_overflow_bucket_reports_max(self):
        h = _hist((1.0,))
        h.observe(123.0)
        h.observe(456.0)
        assert h.quantile(0.99) == 456.0

    def test_empty_and_bounds(self):
        h = _hist()
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            h.quantile(1.5)

    def test_randomized_brackets_true_order_statistic(self):
        """The interpolated quantile always lives in the same bucket as
        the true order statistic it estimates, and is monotone in q."""
        rng = np.random.default_rng(7)
        edges = LATENCY_BUCKETS_SECONDS
        for _ in range(20):
            values = 10.0 ** rng.uniform(-7, 1.5, int(rng.integers(1, 200)))
            h = Histogram("h")
            for v in values:
                h.observe(float(v))
            ordered = np.sort(values)
            qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0]
            estimates = [h.quantile(q) for q in qs]
            assert estimates == sorted(estimates)
            for q, est in zip(qs, estimates):
                rank = max(q * len(ordered), 1.0)
                true = float(ordered[int(np.ceil(rank)) - 1])
                if true > edges[-1]:  # overflow bucket: exact max
                    assert est == h.max
                    continue
                # Same le-bucket: one edge at or above both, none between.
                k = np.searchsorted(edges, true)
                lo = 0.0 if k == 0 else edges[k - 1]
                assert lo <= est <= edges[k], (q, true, est)

    def test_merge_preserves_quantiles(self):
        rng = np.random.default_rng(11)
        parts = []
        for _ in range(3):
            h = Histogram("h", buckets=(0.01, 0.1, 1.0))
            for v in rng.uniform(0.0, 2.0, 50):
                h.observe(float(v))
            parts.append(h)
        merged = Histogram("h", buckets=(0.01, 0.1, 1.0))
        whole = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for p in parts:
            merged.merge(p)
        rng2 = np.random.default_rng(11)
        for _ in range(3):
            for v in rng2.uniform(0.0, 2.0, 50):
                whole.observe(float(v))
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == whole.quantile(q)


class TestRegistry:
    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        c.set(9)
        with pytest.raises(ValueError, match="backwards"):
            c.set(8)

    def test_get_or_create_and_kind_conflict(self):
        reg = MetricsRegistry()
        c = reg.counter("x", labels={"lane": 0})
        assert reg.counter("x", labels={"lane": 0}) is c
        assert reg.counter("x", labels={"lane": 1}) is not c
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", labels={"lane": 0})
        assert reg.get("x", labels={"lane": 1}) is not None
        assert reg.get("missing") is None
        assert len(reg) == 2

    def test_render_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("req_total", help="requests").inc(3)
        reg.gauge("depth", labels={"lane": 2}).set(1.5)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render()
        assert "# HELP req_total requests\n# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert '# TYPE depth gauge' in text
        assert 'depth{lane="2"} 1.5' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_state_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(7)
        reg.gauge("g", labels={"shard": 1}).set(0.25)
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(42.0)
        clone = MetricsRegistry()
        clone.load_state(pickle.loads(pickle.dumps(reg.state())))
        assert clone.render() == reg.render()
        assert clone.snapshot() == reg.snapshot()

    def test_load_state_overwrites_not_adds(self):
        """Repeated installs of the same gather never double count."""
        reg = MetricsRegistry()
        reg.counter("a_total").inc(7)
        state = reg.state()
        target = MetricsRegistry()
        target.load_state(state)
        target.load_state(state)
        assert target.counter("a_total").value == 7

    def test_merge_states_sums_and_merges(self):
        regs = []
        for n in (3, 5):
            r = MetricsRegistry()
            r.counter("ops_total").inc(n)
            r.gauge("depth").set(n)
            h = r.histogram("lat", buckets=(1.0, 2.0))
            for _ in range(n):
                h.observe(1.5)
            regs.append(r)
        merged = MetricsRegistry()
        merged.load_state(merge_states([r.state() for r in regs]))
        assert merged.counter("ops_total").value == 8
        assert merged.gauge("depth").value == 8
        assert merged.get("lat").counts == [0, 8, 0]


def _feed(svc, trace, *, shock=True, complete_every=13, batch=17):
    """Deterministic stream: micro-batches, completes, one mid-run
    shock pair (halve then restore — powers of two, float-exact)."""
    jobs = trace.jobs
    n = len(jobs)
    shock_at = n // 2 if shock else None
    for lo in range(0, n, batch):
        hi = min(lo + batch, n)
        svc.submit_jobs(list(jobs[lo:hi]))
        if shock_at is not None and lo <= shock_at < hi:
            svc.apply_shock(scale=0.5)
            svc.apply_shock(scale=2.0)
        for k in range(lo, hi):
            if k % complete_every == 0:
                svc.complete(jobs[k].job_id)
    svc.drain()


def assert_snapshot_matches_rollup(svc, trace, label=""):
    """The satellite property: metrics snapshot == end-of-run roll-up,
    field for field, bit for bit."""
    m = svc.metrics()
    res = svc.result()
    st = svc.stats
    expected = {
        "serve_submitted_total": st.n_submitted,
        "serve_decided_total": st.n_decided,
        "serve_chunks_total": st.n_chunks,
        "serve_forced_chunks_total": st.forced_chunks,
        "serve_completions_total": st.n_completions,
        "serve_duplicate_completes_total": st.duplicate_completes,
        "serve_stale_completes_total": st.stale_completes,
        "serve_shocks_total": st.n_shocks,
        "serve_evictions_total": st.n_evicted,
        "serve_evicted_bytes_total": st.evicted_bytes,
        "serve_degraded_jobs_total": st.degraded_jobs,
        "serve_degraded_intervals_total": len(st.degraded_intervals),
        "serve_ssd_requested_total": res.n_ssd_requested,
        "serve_spilled_total": res.n_spilled,
    }
    for key, want in expected.items():
        assert m[key] == want, (label, key, m[key], want)
    assert m["serve_decided_total"] == res.n_jobs == len(trace), label
    # Admissions-by-category counters partition the SSD requests.
    cats = {k: v for k, v in m.items()
            if k.startswith("serve_admitted_by_category_total")}
    if cats:
        assert sum(cats.values()) == res.n_ssd_requested, label
    # Latency histograms observed every submission wrapper call.
    assert m["serve_batch_seconds"]["count"] > 0, label
    return m, res


class TestSnapshotEqualsRollup:
    """policy x engine mode x worker count x transport."""

    @pytest.mark.parametrize("pname", ("adaptive", "firstfit"))
    @pytest.mark.parametrize("mode", ("batch", "scalar"))
    def test_single_process(self, trace, builders, pname, mode):
        svc = PlacementService(builders[pname](), CAP, 4, mode=mode)
        svc.open(trace)
        _feed(svc, trace)
        m, _ = assert_snapshot_matches_rollup(svc, trace, f"{pname}/{mode}")
        assert m["serve_shocks_total"] == 2

    @pytest.mark.parametrize("pname", ("adaptive", "firstfit"))
    @pytest.mark.parametrize("mode", ("batch", "scalar"))
    @pytest.mark.parametrize("workers,transport", [
        (1, "inprocess"), (3, "inprocess"), (3, "subprocess"),
    ])
    def test_fleet(self, trace, builders, pname, mode, workers, transport):
        if transport == "subprocess" and mode == "scalar":
            pytest.skip("scalar-over-subprocess sweep covered in-process")
        svc = FleetRouter(
            builders[pname](), CAP, 4, mode=mode,
            n_workers=workers, transport=transport,
        )
        svc.open(trace)
        _feed(svc, trace)
        label = f"{pname}/{mode}/W{workers}/{transport}"
        m, _ = assert_snapshot_matches_rollup(svc, trace, label)
        # Fleet-only surface: gather coverage and worker op telemetry.
        assert m["serve_workers"] == workers, label
        assert m["serve_workers_alive"] == workers, label
        ops = {k: v for k, v in m.items()
               if k.startswith("worker_ops_total")}
        assert sum(ops.values()) > 0, label
        svc.close()

    @pytest.mark.parametrize("pname", ("adaptive", "firstfit"))
    def test_fleet_matches_single_process_counters(
        self, trace, builders, pname
    ):
        """The aggregated fleet snapshot equals the single-process one
        on every pinned counter — scatter-gather adds nothing, loses
        nothing."""
        one = PlacementService(builders[pname](), CAP, 4, mode="batch")
        one.open(trace)
        _feed(one, trace)
        m1, _ = assert_snapshot_matches_rollup(one, trace, "single")
        fleet = FleetRouter(
            builders[pname](), CAP, 4, mode="batch", n_workers=3
        )
        fleet.open(trace)
        _feed(fleet, trace)
        m3, _ = assert_snapshot_matches_rollup(fleet, trace, "fleet")
        fleet.close()
        for key, want in m1.items():
            if key.startswith(("serve_admitted_by_category", "serve_")) \
                    and key.endswith("_total"):
                assert m3[key] == want, key

    def test_repeated_snapshots_do_not_double_count(self, trace, builders):
        """metrics() is idempotent between submissions, including the
        fleet gather path (load_state overwrites)."""
        svc = FleetRouter(builders["adaptive"](), CAP, 4, mode="batch",
                          n_workers=3)
        svc.open(trace)
        _feed(svc, trace)
        a = svc.metrics()
        b = svc.metrics()
        for key, v in a.items():
            if key.endswith("_total"):
                assert b[key] == v, key
        svc.close()

    def test_wal_recovery_continues_counters(self, trace, builders, tmp_path):
        """Counters resume from checkpoint + WAL replay: no resets, no
        double counting — the recovered snapshot equals the roll-up AND
        the uninterrupted run's counters."""
        ref = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        ref.open(trace)
        _feed(ref, trace)
        m_ref, _ = assert_snapshot_matches_rollup(ref, trace, "ref")

        wal = str(tmp_path / "m.wal")
        ckpt = str(tmp_path / "m.ckpt")
        svc = PlacementService(
            builders["adaptive"](), CAP, 4, mode="batch", wal=wal
        )
        svc.open(trace)
        jobs = trace.jobs
        n = len(jobs)
        # Crash on a batch boundary so the recovered run's micro-batch
        # slicing matches the uninterrupted reference stream exactly.
        crash_at = 17 * (n // (3 * 17))
        shock_at = n // 2
        for lo in range(0, crash_at, 17):
            hi = min(lo + 17, crash_at)
            svc.submit_jobs(list(jobs[lo:hi]))
            for k in range(lo, hi):
                if k % 13 == 0:
                    svc.complete(jobs[k].job_id)
        svc.checkpoint(ckpt)
        pinned_at_ckpt = svc.metrics()["serve_decided_total"]
        svc.wal.close()  # crash

        rec = PlacementService.recover(ckpt, wal)
        assert rec.metrics()["serve_decided_total"] >= 0
        for lo in range(crash_at, n, 17):
            hi = min(lo + 17, n)
            rec.submit_jobs(list(jobs[lo:hi]))
            if lo <= shock_at < hi:
                rec.apply_shock(scale=0.5)
                rec.apply_shock(scale=2.0)
            for k in range(lo, hi):
                if k % 13 == 0:
                    rec.complete(jobs[k].job_id)
        rec.drain()
        m_rec, _ = assert_snapshot_matches_rollup(rec, trace, "recovered")
        assert m_rec["serve_decided_total"] >= pinned_at_ckpt
        for key, want in m_ref.items():
            if key.endswith("_total") and key != "serve_wal_records_total":
                assert m_rec[key] == want, key
        # The WAL itself is metered.
        assert m_rec["serve_wal_records_total"] == rec.wal_seq > 0

    def test_snapshot_schema_carries_registry(self, trace, builders):
        svc = PlacementService(builders["firstfit"](), CAP, 1, mode="batch")
        svc.open(trace)
        svc.submit_jobs(list(trace.jobs[:40]))
        svc.drain()
        clone = PlacementService.restore(
            pickle.loads(pickle.dumps(svc.snapshot()))
        )
        assert (clone.metrics()["serve_decided_total"]
                == svc.metrics()["serve_decided_total"])


class TestGaugesAndText:
    def test_lane_gauges_track_kernel_free(self, trace, builders):
        svc = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        svc.open(trace)
        _feed(svc, trace, shock=False)
        m = svc.metrics()
        free = np.asarray(svc.kernel.free, dtype=float)
        caps = np.asarray(svc.lane_capacities, dtype=float)
        for lane in range(4):
            assert m[f'serve_lane_free_bytes{{lane="{lane}"}}'] == free[lane]
            assert (m[f'serve_lane_capacity_bytes{{lane="{lane}"}}']
                    == caps[lane])
            occ = m[f'serve_lane_occupancy_ratio{{lane="{lane}"}}']
            assert 0.0 <= occ <= 1.0

    def test_act_position_exposed(self, trace, builders):
        svc = PlacementService(builders["adaptive"](), CAP, 4, mode="batch")
        svc.open(trace)
        _feed(svc, trace, shock=False)
        m = svc.metrics()
        assert m["serve_act_position"] == svc.policy.act

    def test_metrics_text_parses_as_exposition(self, trace, builders):
        svc = PlacementService(builders["adaptive"](), CAP, 2, mode="batch")
        svc.open(trace)
        _feed(svc, trace, shock=False)
        text = svc.metrics_text()
        assert "# TYPE serve_request_seconds histogram" in text
        assert "# TYPE serve_decided_total counter" in text
        assert 'serve_lane_free_bytes{lane="1"}' in text
        m = svc.metrics()
        assert f"serve_decided_total {m['serve_decided_total']}" in text


class TestScrapeEndpoint:
    def test_scrape_round_trip(self, trace, builders):
        svc = PlacementService(builders["firstfit"](), CAP, 1, mode="batch")
        svc.open(trace)
        svc.submit_jobs(list(trace.jobs[:60]))
        svc.drain()
        cache = [svc.metrics_text()]
        with MetricsServer(lambda: cache[0], port=0) as server:
            assert server.url.endswith(f":{server.port}/metrics")
            with urllib.request.urlopen(server.url, timeout=10) as resp:
                assert resp.status == 200
                ctype = resp.headers["Content-Type"]
                body = resp.read().decode()
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        assert body == cache[0]
        assert "serve_decided_total 60" in body

    def test_unknown_path_is_404(self):
        with MetricsServer(lambda: "ok 1\n", port=0) as server:
            base = f"http://{server.host}:{server.port}"
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{base}/healthz", timeout=10)
            assert exc_info.value.code == 404
            # Bare root and /metrics?query still scrape.
            for path in ("/", "/metrics?x=1"):
                with urllib.request.urlopen(base + path, timeout=10) as r:
                    assert r.status == 200
                    assert r.read() == b"ok 1\n"

    def test_concurrent_scrapes(self):
        """The threading server answers overlapping scrapes; every
        response is complete and identical."""
        import threading

        text = "serve_decided_total 42\n" * 200
        with MetricsServer(lambda: text, port=0) as server:
            bodies = [None] * 8
            errors = []

            def scrape(k):
                try:
                    with urllib.request.urlopen(server.url, timeout=10) as r:
                        bodies[k] = r.read().decode()
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=scrape, args=(k,)) for k in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        assert all(b == text for b in bodies)

    def test_scrape_failure_is_500_not_fatal(self):
        def boom():
            raise RuntimeError("no cache")

        with MetricsServer(boom, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(server.url, timeout=10)
            assert exc_info.value.code == 500
            # The server survives a failed scrape.
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url, timeout=10)

    def test_default_buckets_are_sane(self):
        assert LATENCY_BUCKETS_SECONDS[0] == 1e-6
        assert LATENCY_BUCKETS_SECONDS[-1] == 10.0
        assert list(LATENCY_BUCKETS_SECONDS) == sorted(LATENCY_BUCKETS_SECONDS)
        assert list(SIZE_BUCKETS_JOBS) == sorted(SIZE_BUCKETS_JOBS)
