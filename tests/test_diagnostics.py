"""Category-model diagnostics and Spearman correlation."""

import numpy as np
import pytest

from repro.config import ModelParams
from repro.core import CategoryModel, diagnose_model, prepare_cluster, spearman_rank_correlation


class TestSpearman:
    def test_perfect_monotone(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, a**3) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=3000)
        b = rng.normal(size=3000)
        assert abs(spearman_rank_correlation(a, b)) < 0.06

    def test_constant_input_nan(self):
        assert np.isnan(spearman_rank_correlation(np.ones(5), np.arange(5.0)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.ones(3), np.ones(4))

    def test_tiny_input_nan(self):
        assert np.isnan(spearman_rank_correlation(np.array([1.0]), np.array([2.0])))


class TestDiagnoseModel:
    @pytest.fixture(scope="class")
    def setting(self, two_week_trace):
        cluster = prepare_cluster(two_week_trace)
        model = CategoryModel(ModelParams(n_categories=8, n_rounds=6, max_depth=4))
        model.fit(cluster.train, cluster.features_train)
        return model, cluster

    def test_bundle_shapes(self, setting):
        model, cluster = setting
        diag = diagnose_model(model, cluster.test, cluster.features_test)
        assert diag.confusion.shape == (8, 8)
        assert diag.confusion.sum() == len(cluster.test)
        assert diag.admission_precision.shape == (8,)
        assert np.isnan(diag.admission_precision[0])  # k=0 undefined

    def test_accuracies_consistent(self, setting):
        model, cluster = setting
        diag = diagnose_model(model, cluster.test, cluster.features_test)
        assert 0.0 <= diag.top1_accuracy <= diag.within_one_accuracy <= 1.0
        assert diag.top1_accuracy == pytest.approx(
            np.trace(diag.confusion) / diag.confusion.sum()
        )

    def test_ranking_informative(self, setting):
        """The regime the paper relies on: modest top-1 accuracy but a
        strongly informative ranking."""
        model, cluster = setting
        diag = diagnose_model(model, cluster.test, cluster.features_test)
        assert diag.rank_correlation > 0.4

    def test_admission_precision_beats_base_rate(self, setting):
        model, cluster = setting
        diag = diagnose_model(model, cluster.test, cluster.features_test)
        true = model.labels_for(cluster.test)
        k = 4
        base_rate = (true >= k).mean()
        if not np.isnan(diag.admission_precision[k]):
            assert diag.admission_precision[k] > base_rate
