"""Rolling retraining: model refresh at workload velocity."""

import numpy as np
import pytest

from repro.config import ModelParams
from repro.core import RetrainingPolicy, RollingTrainer, prepare_cluster
from repro.storage import simulate
from repro.units import DAY
from repro.workloads import extract_features

FAST = ModelParams(n_categories=6, n_rounds=3, max_depth=3)


@pytest.fixture(scope="module")
def setting(two_week_trace):
    features = extract_features(two_week_trace)
    return two_week_trace, features


class TestRollingTrainer:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RollingTrainer(window=0.0)
        with pytest.raises(ValueError):
            RollingTrainer(interval=-1.0)

    def test_no_refit_before_min_jobs(self, setting):
        trace, features = setting
        trainer = RollingTrainer(FAST, min_jobs=10**9)
        assert not trainer.maybe_refit(7 * DAY, trace, features)
        assert trainer.model is None

    def test_refit_installs_model(self, setting):
        trace, features = setting
        trainer = RollingTrainer(FAST, window=7 * DAY, interval=DAY, min_jobs=50)
        assert trainer.maybe_refit(7 * DAY, trace, features)
        assert trainer.model is not None
        assert len(trainer.events) == 1
        assert trainer.events[0].n_training_jobs >= 50

    def test_interval_throttles_refits(self, setting):
        trace, features = setting
        trainer = RollingTrainer(FAST, window=7 * DAY, interval=2 * DAY, min_jobs=50)
        assert trainer.maybe_refit(7 * DAY, trace, features)
        assert not trainer.maybe_refit(7 * DAY + 3600, trace, features)
        assert trainer.maybe_refit(9 * DAY + 1, trace, features)
        assert len(trainer.events) == 2

    def test_window_excludes_stale_jobs(self, setting):
        trace, features = setting
        trainer = RollingTrainer(FAST, window=1 * DAY, interval=DAY, min_jobs=1)
        trainer.maybe_refit(10 * DAY, trace, features)
        # All training jobs must have completed inside (9d, 10d].
        assert trainer.events, "expected a refit"
        n = trainer.events[0].n_training_jobs
        in_window = ((trace.ends <= 10 * DAY) & (trace.ends > 9 * DAY)).sum()
        assert n == in_window


class TestRetrainingPolicy:
    def test_end_to_end_simulation(self, setting):
        trace, features = setting
        trainer = RollingTrainer(FAST, window=7 * DAY, interval=2 * DAY, min_jobs=50)
        policy = RetrainingPolicy(trainer, features)
        res = simulate(trace, policy, capacity=0.05 * trace.peak_ssd_usage())
        assert res.n_jobs == len(trace)
        # The trainer must have refit at least once over two weeks.
        assert len(trainer.events) >= 1
        # And the adaptive trajectory exists.
        assert len(policy.trajectory) > 0

    def test_misaligned_features_raise(self, setting, handmade_trace):
        _, features = setting
        trainer = RollingTrainer(FAST)
        policy = RetrainingPolicy(trainer, features)
        with pytest.raises(ValueError):
            simulate(handmade_trace, policy, capacity=1e18)
